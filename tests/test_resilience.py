"""Unit tests for :mod:`repro.resilience` (PR 8).

Covers the deterministic fault-injection harness (spec validation,
activation/one-shot/probability semantics, seed reproducibility), the
retry/backoff policy (healing transients, exhaustion re-raising the original
typed error, deterministic jitter), deadlines, the circuit breaker's
closed → open → half-open lifecycle, and the crash-consistency property of
:func:`repro.utils.io.atomic_pickle_dump` under an injected kill between
temp-write and ``os.replace``.
"""

import pickle

import pytest

from repro.exceptions import (
    DeadlineError,
    DistanceError,
    FaultInjectedError,
    OverloadError,
    ResilienceError,
)
from repro.resilience import (
    CircuitBreaker,
    Deadline,
    FaultPlan,
    FaultSpec,
    ResiliencePolicy,
    RetryPolicy,
    inject_io_faults,
)
from repro.utils.io import atomic_pickle_dump, load_validated_payload


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ResilienceError, match="kind"):
            FaultSpec("shards.decode", kind="explode")
        with pytest.raises(ResilienceError, match="after"):
            FaultSpec("shards.decode", after=-1)
        with pytest.raises(ResilienceError, match="fires"):
            FaultSpec("shards.decode", fires=0)
        with pytest.raises(ResilienceError, match="probability"):
            FaultSpec("shards.decode", probability=0.0)
        with pytest.raises(ResilienceError, match="delay"):
            FaultSpec("shards.decode", kind="delay", delay=-0.1)


class TestFaultPlan:
    def test_one_shot_error_fires_once_after_skip(self):
        plan = FaultPlan([FaultSpec("shards.decode", after=2)])
        assert plan.fire("shards.decode") is False
        assert plan.fire("shards.decode") is False
        with pytest.raises(FaultInjectedError, match="shards.decode"):
            plan.fire("shards.decode")
        # One-shot: spent after firing once.
        assert plan.fire("shards.decode") is False
        assert plan.activations["shards.decode"] == 4
        assert plan.injected["shards.decode"] == 1
        assert plan.injected_total() == 1

    def test_sites_are_independent(self):
        plan = FaultPlan([FaultSpec("sidecar.load")])
        assert plan.fire("shards.decode") is False  # no spec for this site
        with pytest.raises(FaultInjectedError):
            plan.fire("sidecar.load")

    def test_corrupt_returns_flag_instead_of_raising(self):
        plan = FaultPlan([FaultSpec("sidecar.load", kind="corrupt")])
        assert plan.fire("sidecar.load") is True
        assert plan.fire("sidecar.load") is False

    def test_delay_sleeps_deterministically(self):
        plan = FaultPlan([FaultSpec("serving.tick", kind="delay", delay=0.123)])
        slept = []
        plan._sleep = slept.append
        assert plan.fire("serving.tick") is False
        assert slept == [0.123]

    def test_kill_prefers_the_site_exception(self):
        plan = FaultPlan([FaultSpec("executor.dispatch", kind="kill")])
        with pytest.raises(BrokenPipeError):
            plan.fire("executor.dispatch", kill_error=BrokenPipeError)

    def test_explicit_error_instance_is_raised(self):
        boom = OSError("disk on fire")
        plan = FaultPlan([FaultSpec("shards.decode", error=boom)])
        with pytest.raises(OSError, match="disk on fire"):
            plan.fire("shards.decode")

    def test_probability_schedule_is_seed_deterministic(self):
        def schedule(seed):
            plan = FaultPlan(
                [FaultSpec("kernel.pair", probability=0.5, fires=None)], seed=seed
            )
            fired = []
            for _ in range(50):
                try:
                    plan.fire("kernel.pair")
                    fired.append(False)
                except FaultInjectedError:
                    fired.append(True)
            return fired

        assert schedule(7) == schedule(7)  # same seed, same schedule
        assert schedule(7) != schedule(8)  # different seed, different draws
        assert any(schedule(7)) and not all(schedule(7))

    def test_metrics_count_injections(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        plan = FaultPlan([FaultSpec("sidecar.save")])
        plan.attach_metrics(registry)
        with pytest.raises(FaultInjectedError):
            plan.fire("sidecar.save")
        counters = registry.snapshot()["counters"]
        assert counters["resilience.faults_injected.sidecar.save"] == 1


class TestRetryPolicy:
    def test_transient_failure_is_healed(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        calls = {"count": 0}

        def flaky():
            calls["count"] += 1
            if calls["count"] < 3:
                raise OSError("transient")
            return "ok"

        assert policy.call(flaky, site="shards.decode", sleep=lambda _: None) == "ok"
        assert calls["count"] == 3

    def test_exhaustion_reraises_the_original_error(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0)

        def always():
            raise DistanceError("truncated sidecar")

        with pytest.raises(DistanceError, match="truncated sidecar"):
            policy.call(always, site="sidecar.load", sleep=lambda _: None)

    def test_non_retriable_errors_pass_straight_through(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.0)
        calls = {"count": 0}

        def blown_deadline():
            calls["count"] += 1
            raise DeadlineError("budget spent")

        with pytest.raises(DeadlineError):
            policy.call(blown_deadline, site="any", sleep=lambda _: None)
        assert calls["count"] == 1  # never retried
        calls["count"] = 0

        def shed():
            calls["count"] += 1
            raise OverloadError("queue full")

        with pytest.raises(OverloadError):
            policy.call(shed, site="any", sleep=lambda _: None)
        assert calls["count"] == 1

    def test_unmatched_exceptions_are_not_retried(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.0)
        calls = {"count": 0}

        def bug():
            calls["count"] += 1
            raise ValueError("a programming bug, not a fault")

        with pytest.raises(ValueError):
            policy.call(bug, site="any", sleep=lambda _: None)
        assert calls["count"] == 1

    def test_backoff_is_deterministic_exponential_and_capped(self):
        policy = RetryPolicy(
            base_delay=0.01, multiplier=2.0, max_delay=0.05, jitter=0.5, seed=3
        )
        first = [policy.backoff("site", attempt) for attempt in (1, 2, 3, 10)]
        second = [policy.backoff("site", attempt) for attempt in (1, 2, 3, 10)]
        assert first == second  # same (seed, site, attempt) -> same jitter
        for attempt, delay in zip((1, 2, 3, 10), first):
            raw = min(0.05, 0.01 * 2.0 ** (attempt - 1))
            assert raw * 0.5 <= delay <= raw * 1.5
        assert policy.backoff("site", 1) != policy.backoff("other", 1)

    def test_per_site_attempt_caps(self):
        policy = RetryPolicy(max_attempts=4, per_site={"sidecar.load": 1})
        assert policy.attempts_for("sidecar.load") == 1
        assert policy.attempts_for("shards.decode") == 4

    def test_metrics_account_for_every_retry(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        policy = RetryPolicy(max_attempts=3, base_delay=0.001)

        def always():
            raise OSError("down")

        with pytest.raises(OSError):
            policy.call(
                always, site="shards.decode", metrics=registry, sleep=lambda _: None
            )
        counters = registry.snapshot()["counters"]
        assert counters["resilience.retries.shards.decode"] == 2
        assert counters["resilience.retry_exhausted.shards.decode"] == 1

    def test_validation(self):
        with pytest.raises(ResilienceError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ResilienceError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ResilienceError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ResilienceError):
            RetryPolicy(per_site={"x": 0})


class TestDeadline:
    def test_check_raises_once_spent(self):
        times = iter([0.0, 0.05, 0.2])
        deadline = Deadline(0.1, clock_fn=lambda: next(times))
        deadline.check("warm")  # 0.05 elapsed: fine
        with pytest.raises(DeadlineError, match="exceeded at cold"):
            deadline.check("cold")

    def test_remaining_and_expired(self):
        now = {"t": 0.0}
        deadline = Deadline(1.0, clock_fn=lambda: now["t"])
        assert deadline.remaining() == pytest.approx(1.0)
        assert not deadline.expired()
        now["t"] = 2.0
        assert deadline.remaining() == pytest.approx(-1.0)
        assert deadline.expired()

    def test_validation(self):
        with pytest.raises(ResilienceError):
            Deadline(0.0)


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures_only(self):
        breaker = CircuitBreaker("tier", threshold=3, cooldown=10.0)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # resets the consecutive count
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allows()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allows()
        assert breaker.trips == 1

    def test_half_open_probe_then_close_or_reopen(self):
        now = {"t": 0.0}
        breaker = CircuitBreaker(
            "tier", threshold=1, cooldown=5.0, clock_fn=lambda: now["t"]
        )
        breaker.record_failure()
        assert not breaker.allows()
        now["t"] = 6.0  # cool-down elapsed: one probe allowed
        assert breaker.state == "half-open"
        assert breaker.allows()
        breaker.record_failure()  # probe failed: re-open, restart cool-down
        assert not breaker.allows()
        now["t"] = 12.0
        assert breaker.allows()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.reopens == 1
        assert breaker.as_dict() == {"state": "closed", "trips": 2, "reopens": 1}

    def test_gauge_mirrors_state(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        breaker = CircuitBreaker("tier", threshold=1, metrics=registry)
        breaker.record_failure()
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["resilience.breaker_state.tier"] == 2
        assert snapshot["counters"]["resilience.breaker_trips"] == 1


class TestResiliencePolicy:
    def test_defaults_are_safe(self):
        policy = ResiliencePolicy()
        assert policy.retry is not None
        assert policy.deadline is None
        assert policy.sidecar == "strict"
        assert policy.max_queue_depth is None

    def test_validation(self):
        with pytest.raises(ResilienceError):
            ResiliencePolicy(deadline=0.0)
        with pytest.raises(ResilienceError):
            ResiliencePolicy(sidecar="ignore")
        with pytest.raises(ResilienceError):
            ResiliencePolicy(breaker_threshold=0)
        with pytest.raises(ResilienceError):
            ResiliencePolicy(max_queue_depth=0)


class TestAtomicDumpCrashConsistency:
    """Satellite (c): a kill between temp-write and ``os.replace`` must never
    truncate or corrupt the previously persisted artifact."""

    def test_prior_file_survives_a_kill_before_replace(self, tmp_path):
        target = tmp_path / "artifact.pickle"
        atomic_pickle_dump({"format": "t", "version": 1, "value": "old"}, target)
        plan = FaultPlan([FaultSpec("io.replace", kind="kill")])
        with inject_io_faults(plan):
            with pytest.raises(FaultInjectedError):
                atomic_pickle_dump(
                    {"format": "t", "version": 1, "value": "new"}, target
                )
        # The prior artifact is byte-for-byte loadable and the temp file is
        # cleaned up — a later retry starts from a clean directory.
        payload = load_validated_payload(target, "t", (1,), "test", DistanceError)
        assert payload["value"] == "old"
        assert list(tmp_path.iterdir()) == [target]

    @pytest.mark.parametrize("generation", range(5))
    def test_every_other_dump_killed_never_loses_the_last_good_state(
        self, tmp_path, generation
    ):
        # Property shape: interleave successful dumps with killed dumps at
        # varying offsets; after each kill the newest *committed* payload is
        # the one on disk, fully loadable.
        target = tmp_path / "state.pickle"
        plan = FaultPlan(
            [FaultSpec("io.replace", kind="kill", after=generation, fires=None)]
        )
        committed = None
        with inject_io_faults(plan):
            for value in range(8):
                payload = {"format": "t", "version": 1, "value": value}
                try:
                    atomic_pickle_dump(payload, target)
                    committed = value
                except FaultInjectedError:
                    pass
        assert committed is not None or not target.exists()
        if committed is not None:
            loaded = load_validated_payload(target, "t", (1,), "test", DistanceError)
            assert loaded["value"] == committed
            with target.open("rb") as handle:
                pickle.load(handle)  # no trailing garbage, no truncation

    def test_sidecar_save_through_the_resolver_is_crash_consistent(self, tmp_path):
        # End-to-end shape of the same property: the distance-cache sidecar
        # written by a session survives a kill during a later rewrite.
        from repro.engine import NedSession, TreeStore
        from repro.graph.generators import grid_road_graph

        graph = grid_road_graph(4, 4, seed=2)
        store = TreeStore.from_graph(graph, k=2)
        sidecar = tmp_path / "cache.ned"
        with NedSession(store, cache_file=sidecar) as session:
            before = session.knn(session.probe(graph, 0), 4)
        good_bytes = sidecar.read_bytes()

        # fires=None: every save attempt is killed, so the session's retry
        # policy exhausts and the typed error surfaces from close().
        plan = FaultPlan([FaultSpec("io.replace", kind="kill", fires=None)])
        with inject_io_faults(plan):
            with pytest.raises(FaultInjectedError):
                with NedSession(store, cache_file=sidecar) as session:
                    session.knn(session.probe(graph, 1), 4)
        assert sidecar.read_bytes() == good_bytes  # prior sidecar untouched
        with NedSession(store, cache_file=sidecar) as warm:
            assert warm.knn(warm.probe(graph, 0), 4) == before
            assert warm.stats.exact_evaluations == 0
