"""Graph-level similarity built on the NED node metric (paper Appendix A)."""

from repro.graphsim.hausdorff import hausdorff_graph_distance, modified_hausdorff_graph_distance

__all__ = ["hausdorff_graph_distance", "modified_hausdorff_graph_distance"]
