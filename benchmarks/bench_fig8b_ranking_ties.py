"""Figure 8b — number of ties in the top-l ranking vs parameter k."""

from _bench_utils import emit_tables

from repro.experiments.fig8_parameter_k import figure8_parameter_k


def test_figure8b_ranking_ties(benchmark):
    """Increasing k breaks ties in the top-l ranking."""
    results = benchmark.pedantic(
        lambda: figure8_parameter_k(ks=(1, 2, 3, 4), query_count=8, candidate_count=60,
                                    scale=0.4),
        rounds=1,
        iterations=1,
    )
    emit_tables({"figure8b": results["figure8b_ranking_ties"]})
    ties = [row["avg_ties_in_top_l"] for row in results["figure8b_ranking_ties"].rows]
    assert ties[0] >= ties[-1]
