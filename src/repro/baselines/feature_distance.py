"""Distances and nearest-neighbor queries over feature vectors.

The feature-based baselines (ReFeX, NetSimile, OddBall) embed each node into
a small real vector; comparing two nodes then means comparing vectors.  The
paper highlights two consequences reproduced here:

* the comparison is *not* a metric over nodes (two structurally different
  neighborhoods can produce identical vectors), and
* nearest-neighbor queries require a full scan over all candidate vectors,
  because general feature weighting/normalisation breaks metric indexing.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Sequence, Tuple

from repro.exceptions import DistanceError

Node = Hashable
Vector = Sequence[float]


def euclidean_distance(first: Vector, second: Vector) -> float:
    """Euclidean distance between two equal-length vectors."""
    if len(first) != len(second):
        raise DistanceError(
            f"feature vectors must have the same length ({len(first)} != {len(second)})"
        )
    return math.sqrt(sum((a - b) ** 2 for a, b in zip(first, second)))


def manhattan_distance(first: Vector, second: Vector) -> float:
    """Manhattan (L1) distance between two equal-length vectors."""
    if len(first) != len(second):
        raise DistanceError(
            f"feature vectors must have the same length ({len(first)} != {len(second)})"
        )
    return sum(abs(a - b) for a, b in zip(first, second))


def canberra_distance(first: Vector, second: Vector) -> float:
    """Canberra distance, the per-feature-normalised distance used by NetSimile."""
    if len(first) != len(second):
        raise DistanceError(
            f"feature vectors must have the same length ({len(first)} != {len(second)})"
        )
    total = 0.0
    for a, b in zip(first, second):
        denominator = abs(a) + abs(b)
        if denominator > 0:
            total += abs(a - b) / denominator
    return total


_DISTANCES = {
    "euclidean": euclidean_distance,
    "manhattan": manhattan_distance,
    "canberra": canberra_distance,
}


def feature_distance(first: Vector, second: Vector, kind: str = "euclidean") -> float:
    """Return the ``kind`` distance between two feature vectors."""
    if kind not in _DISTANCES:
        raise DistanceError(f"unknown feature distance {kind!r}; expected one of {sorted(_DISTANCES)}")
    return _DISTANCES[kind](first, second)


def normalize_features(table: Dict[Node, List[float]]) -> Dict[Node, List[float]]:
    """Min-max normalise each feature column to [0, 1] across the table."""
    if not table:
        return {}
    width = len(next(iter(table.values())))
    minima = [math.inf] * width
    maxima = [-math.inf] * width
    for vector in table.values():
        for i, value in enumerate(vector):
            minima[i] = min(minima[i], value)
            maxima[i] = max(maxima[i], value)
    spans = [maxima[i] - minima[i] for i in range(width)]
    normalised: Dict[Node, List[float]] = {}
    for node, vector in table.items():
        normalised[node] = [
            (value - minima[i]) / spans[i] if spans[i] > 0 else 0.0
            for i, value in enumerate(vector)
        ]
    return normalised


def feature_knn(
    query_vector: Vector,
    table: Dict[Node, List[float]],
    k: int,
    kind: str = "euclidean",
) -> List[Tuple[Node, float]]:
    """Full-scan k-nearest-neighbor query over a feature table.

    Returns the ``k`` nodes with the smallest feature distance to
    ``query_vector`` as ``(node, distance)`` pairs, closest first.  This is
    deliberately a linear scan: the feature baselines have no metric index.
    """
    if k <= 0:
        raise DistanceError(f"k must be positive, got {k}")
    scored = [(node, feature_distance(query_vector, vector, kind)) for node, vector in table.items()]
    scored.sort(key=lambda pair: (pair[1], repr(pair[0])))
    return scored[:k]
