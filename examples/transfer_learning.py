#!/usr/bin/env python
"""Across-network node classification ("transfer learning on graphs").

The paper motivates NED with transferring knowledge from an analysed graph to
a new, unlabelled one: nodes of the new graph are classified by the labels of
their nearest neighbors (under NED) in the old graph.  This example labels
nodes of a community graph as "hub" or "peripheral" from their degree, then
classifies nodes of a *different* community graph using only NED and the old
graph's labels — no features, no labels from the new graph.

Run with::

    python examples/transfer_learning.py
"""

from __future__ import annotations

from collections import Counter

from repro.core.ned import NedComputer
from repro.graph.generators import community_graph

K = 2
NEIGHBORS = 3
HUB_QUANTILE = 0.8


def role_labels(graph) -> dict:
    """Label each node 'hub' (top degree quantile) or 'peripheral'."""
    degrees = graph.degrees()
    ordered = sorted(degrees.values())
    threshold = ordered[int(HUB_QUANTILE * (len(ordered) - 1))]
    return {node: ("hub" if degree >= threshold else "peripheral")
            for node, degree in degrees.items()}


def main() -> None:
    print("== Transfer learning across networks with NED ==")
    known_graph = community_graph(3, 20, p_intra=0.35, p_inter=0.02, seed=1)
    new_graph = community_graph(3, 20, p_intra=0.35, p_inter=0.02, seed=2)
    known_labels = role_labels(known_graph)
    true_new_labels = role_labels(new_graph)  # ground truth, used only for scoring

    computer = NedComputer(k=K)
    training_nodes = known_graph.nodes()

    correct = 0
    evaluated = 0
    predictions = Counter()
    for node in new_graph.nodes()[:40]:
        distances = sorted(
            (computer.distance(known_graph, train, new_graph, node), train)
            for train in training_nodes
        )[:NEIGHBORS]
        votes = Counter(known_labels[train] for _, train in distances)
        predicted = votes.most_common(1)[0][0]
        predictions[predicted] += 1
        evaluated += 1
        if predicted == true_new_labels[node]:
            correct += 1

    print(f"classified {evaluated} nodes of the new graph by {NEIGHBORS}-NN over NED (k={K})")
    print(f"predicted label distribution: {dict(predictions)}")
    print(f"accuracy against degree-based ground truth: {correct / evaluated:.2f}")
    print("\nNo labels or features of the new graph were used: the structural roles "
          "transferred purely through inter-graph node similarity.")


if __name__ == "__main__":
    main()
