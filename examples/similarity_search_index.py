#!/usr/bin/env python
"""Metric indexing and bound-pruned search for NED retrieval (paper §13.4, Figure 9b).

Because NED is a metric, candidate nodes can be indexed once in a VP-tree and
nearest-neighbor queries answered with far fewer distance evaluations than a
full scan.  The batch engine goes further: it precomputes every candidate's
k-adjacent tree plus O(k) summaries in a ``TreeStore`` (persistable with
``save()``/``load()``), and resolves candidates through a tier cascade so
that most never pay for an exact TED* at all.

How pruning works
-----------------
Every query–candidate distance flows through one
``repro.ted.resolver.BoundedNedDistance`` cascade, cheapest tier first:

1. *signature* — equal AHU canonical signatures mean isomorphic trees, so
   the distance is exactly 0 with no further work;
2. *level-size bounds* — O(k) lower/upper bounds from per-level sizes;
3. *degree-multiset bounds* — tighter earth-mover-style bounds from the
   per-level child-count multisets (they dominate tier 2);
4. *exact TED** — the O(k·n³) computation, paid only when the interval left
   by tiers 1-3 still straddles the decision (the current k-th best
   distance, a range radius).

``mode="bound-prune"`` drives the cascade through a scan; ``mode="hybrid"``
plugs it into the VP-tree itself, so triangle pruning discards whole
subtrees while the summary bounds discard individual candidates.  Either
way the results are identical to the exact scan — only the number of exact
TED* evaluations changes, and the per-tier engine counters show exactly
where each skipped evaluation went.

Run with::

    python examples/similarity_search_index.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.datasets.registry import load_dataset_pair
from repro.engine import NedSession, TreeStore
from repro.trees.adjacent import k_adjacent_tree
from repro.utils.timer import Timer

K = 3
CANDIDATES = 150
NEIGHBORS = 5
QUERIES = 5


def main() -> None:
    print("== NED similarity retrieval: VP-tree vs bound-pruned vs hybrid engine ==")
    graph_q, graph_c = load_dataset_pair("PGP", "PGP", scale=0.4, seed=3)
    candidate_nodes = graph_c.nodes()[:CANDIDATES]
    print(f"precomputing {len(candidate_nodes)} candidate trees from the second graph (k={K})")

    # One extraction pass; the store persists, so later processes skip it.
    with Timer() as extraction_timer:
        store = TreeStore.from_graph(graph_c, K, nodes=candidate_nodes)
    extraction_seconds = extraction_timer.elapsed
    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "pgp_candidates.treestore"
        store.save(store_path)
        store = TreeStore.load(store_path)
    print(f"TreeStore built in {extraction_seconds:.2f}s, "
          f"round-tripped through {store_path.name}")

    # Four engines over the SAME store: exact scan (the reference), the
    # VP-tree (the paper's index), summary-bound pruning (no index), and the
    # hybrid VP-tree that composes triangle and summary pruning.  Each
    # pruning regime gets its own session with the distance cache off, so
    # the counters below compare touched pairs per regime (a production
    # session would keep the default cache on and share one session).
    regimes = {
        "scan": dict(mode="exact", index="linear"),
        "vptree": dict(mode="exact", index="vptree", leaf_size=8),
        "bound-prune": dict(mode="bound-prune"),
        "hybrid": dict(mode="hybrid", index="vptree", leaf_size=8),
    }
    engines = {
        name: NedSession(store, cache_size=0).search_engine(**options)
        for name, options in regimes.items()
    }
    scan_engine = engines["scan"]
    vptree_engine = engines["vptree"]
    pruned_engine = engines["bound-prune"]
    hybrid_engine = engines["hybrid"]

    totals = {"scan": 0, "vptree": 0, "bound-prune": 0, "hybrid": 0}
    for query_node in graph_q.nodes()[:QUERIES]:
        query_tree = k_adjacent_tree(graph_q, query_node, K)
        scan_result = scan_engine.knn(query_tree, NEIGHBORS)
        vptree_result = vptree_engine.knn(query_tree, NEIGHBORS)
        pruned_result = pruned_engine.knn(query_tree, NEIGHBORS)
        hybrid_result = hybrid_engine.knn(query_tree, NEIGHBORS)
        assert [d for _, d in vptree_result] == [d for _, d in scan_result], "index must be exact"
        assert pruned_result == scan_result, "bound pruning must be exact"
        assert [d for _, d in hybrid_result] == [d for _, d in scan_result], \
            "hybrid pruning must be exact"
        totals["scan"] += scan_engine.last_query_distance_calls
        totals["vptree"] += vptree_engine.last_query_distance_calls
        totals["bound-prune"] += pruned_engine.last_query_distance_calls
        totals["hybrid"] += hybrid_engine.last_query_distance_calls
        print(f"  query node {query_node}: nearest distances "
              f"{[round(d, 1) for _, d in scan_result]} — exact TED* evaluations: "
              f"scan {scan_engine.last_query_distance_calls}, "
              f"vptree {vptree_engine.last_query_distance_calls}, "
              f"bound-prune {pruned_engine.last_query_distance_calls}, "
              f"hybrid {hybrid_engine.last_query_distance_calls}")

    print(f"\nacross {QUERIES} queries (exact TED* evaluations):")
    for name, count in totals.items():
        saved = 1.0 - count / totals["scan"] if totals["scan"] else 0.0
        print(f"  {name:<12}: {count:>5}  ({saved:.0%} saved vs scan)")
    stats = hybrid_engine.stats
    print(f"\nhybrid engine per-tier counters: {stats.signature_hits} signature hits, "
          f"{stats.decided_by_level_size} + {stats.decided_by_degree} decided by "
          f"level-size/degree bounds, {stats.pruned_by_level_size} + "
          f"{stats.pruned_by_degree} pruned by level-size/degree lower bounds "
          f"(pruning ratio {stats.pruning_ratio:.0%}).")
    print("Feature-based similarities are not metrics and have no such bounds, "
          "so they always pay the full scan.")


if __name__ == "__main__":
    main()
