"""Optional SciPy backend for the assignment problem.

SciPy's :func:`scipy.optimize.linear_sum_assignment` is a battle-tested
implementation of the same problem the from-scratch Hungarian solver handles.
It is used to cross-validate our solver in tests and as an alternative TED*
backend in the ablation benchmarks; the core library never requires SciPy.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.exceptions import MatchingError


def scipy_available() -> bool:
    """Return whether SciPy can be imported in this environment."""
    try:
        import scipy.optimize  # noqa: F401
    except ImportError:  # pragma: no cover - environment dependent
        return False
    return True


def scipy_assignment(cost_matrix: Sequence[Sequence[float]]) -> Tuple[List[int], float]:
    """Solve the square assignment problem using SciPy.

    Mirrors the return convention of :func:`repro.matching.hungarian.hungarian`.
    """
    try:
        import numpy as np
        from scipy.optimize import linear_sum_assignment
    except ImportError as exc:  # pragma: no cover - environment dependent
        raise MatchingError("scipy is not installed; use the 'hungarian' backend") from exc

    n = len(cost_matrix)
    if n == 0:
        return [], 0.0
    matrix = np.asarray(cost_matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise MatchingError("cost matrix must be square")
    rows, cols = linear_sum_assignment(matrix)
    assignment = [0] * n
    for r, c in zip(rows, cols):
        assignment[int(r)] = int(c)
    total = float(matrix[rows, cols].sum())
    return assignment, total
