"""Linear-scan "index": the brute-force baseline for similarity retrieval.

Feature-based similarities cannot use metric indexes (their distances do not
satisfy the metric properties across pairs), so every query degenerates to a
scan of all candidates — the behaviour this class models.  It also serves as
the ground truth the VP-tree results are checked against in the tests.

With an optional ``resolver`` hook (see
:class:`~repro.index.knn.MetricIndexBase`), the scan still touches every
item but resolves each one through the cheap interval tiers first, paying
for an exact distance only when the interval straddles the running
threshold — results identical to the plain scan, fewer exact evaluations.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Optional, Tuple

from repro.exceptions import IndexingError
from repro.index.knn import MetricIndexBase


class LinearScanIndex(MetricIndexBase):
    """Answers kNN and range queries by evaluating every indexed item."""

    def _knn(
        self, query: Any, k: int, tau_hint: Optional[float] = None
    ) -> List[Tuple[Any, float]]:
        """Return the ``k`` closest items by scanning all of them.

        Ties at the ``k``-th cut are broken by scan (build) order, exactly
        like ``heapq.nsmallest`` over ``(distance, index)`` pairs.
        """
        if k <= 0:
            raise IndexingError(f"k must be positive, got {k}")
        hint = float("inf") if tau_hint is None else float(tau_hint)
        # Max-heap of (-distance, -index): the root is the lexicographically
        # largest (distance, index) pair, so eviction matches nsmallest.
        best: List[Tuple[float, int]] = []

        def tau() -> float:
            return min(hint, -best[0][0]) if len(best) == k else hint

        for index, item in enumerate(self._items):
            distance = self._resolve_within(query, item, tau())
            if distance is None:
                continue
            entry = (-distance, -index)
            if len(best) < k:
                heapq.heappush(best, entry)
            elif entry > best[0]:
                heapq.heapreplace(best, entry)
        ordered = sorted((-negative, -negated_index) for negative, negated_index in best)
        return [(self._items[index], distance) for distance, index in ordered]

    def _range_search(self, query: Any, radius: float) -> List[Tuple[Any, float]]:
        """Return every item within ``radius`` by scanning all of them."""
        if radius < 0:
            raise IndexingError(f"radius must be non-negative, got {radius}")
        result = []
        for item in self._items:
            distance = self._resolve_within(query, item, radius)
            if distance is not None and distance <= radius:
                result.append((item, distance))
        result.sort(key=lambda pair: pair[1])
        return result
