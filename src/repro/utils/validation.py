"""Argument-validation helpers shared across the library."""

from __future__ import annotations

from repro.exceptions import ReproError


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is an ``int`` strictly greater than zero."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_non_negative_int(value: int, name: str) -> int:
    """Validate that ``value`` is an ``int`` greater than or equal to zero."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    try:
        numeric = float(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a number, got {type(value).__name__}") from exc
    if not 0.0 <= numeric <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value}")
    return numeric


def require(condition: bool, message: str) -> None:
    """Raise :class:`ReproError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ReproError(message)
