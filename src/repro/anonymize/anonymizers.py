"""Graph anonymization schemes (naive, sparsification, perturbation).

Following Fu, Zhang & Xie (ACM TIST 2015), the paper anonymises the testing
graph with three schemes of increasing strength:

* **naive anonymization** — node identifiers are replaced by fresh pseudonyms
  but the structure is untouched;
* **sparsification** — a fraction of the edges is removed (in addition to the
  identifier permutation);
* **perturbation** — a fraction of the edges is removed and the same number
  of random non-edges is inserted, so structure is distorted in both
  directions.

Each scheme returns an :class:`AnonymizedGraph` carrying the anonymised graph
together with the ground-truth mapping from pseudonyms back to the original
identifiers, which the de-anonymization evaluation needs to score precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from repro.graph.graph import Graph
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_probability

Node = Hashable


@dataclass(frozen=True)
class AnonymizedGraph:
    """An anonymised graph plus the secret mapping back to original node ids.

    Attributes
    ----------
    graph:
        The anonymised graph whose nodes are pseudonyms ``0..n-1``.
    true_identity:
        Mapping from pseudonym to the original node identifier.
    scheme:
        Name of the anonymization scheme ("naive", "sparsification",
        "perturbation").
    ratio:
        The edge modification ratio used (0 for naive anonymization).
    """

    graph: Graph
    true_identity: Dict[Node, Node]
    scheme: str
    ratio: float

    def pseudonyms(self) -> List[Node]:
        """Return the anonymised node identifiers."""
        return list(self.graph.nodes())


def _permute_identifiers(graph: Graph, rng) -> Tuple[Graph, Dict[Node, Node]]:
    """Relabel nodes with pseudonyms 0..n-1 in random order."""
    originals = list(graph.nodes())
    rng.shuffle(originals)
    pseudonym_of = {original: pseudonym for pseudonym, original in enumerate(originals)}
    anonymised = Graph()
    anonymised.add_nodes_from(range(len(originals)))
    for u, v in graph.edges():
        anonymised.add_edge(pseudonym_of[u], pseudonym_of[v])
    true_identity = {pseudonym: original for original, pseudonym in pseudonym_of.items()}
    return anonymised, true_identity


def naive_anonymization(graph: Graph, seed: RngLike = None) -> AnonymizedGraph:
    """Replace node identifiers with pseudonyms; keep the structure intact."""
    rng = ensure_rng(seed)
    anonymised, identity = _permute_identifiers(graph, rng)
    return AnonymizedGraph(graph=anonymised, true_identity=identity, scheme="naive", ratio=0.0)


def sparsification_anonymization(
    graph: Graph,
    ratio: float,
    seed: RngLike = None,
) -> AnonymizedGraph:
    """Remove a ``ratio`` fraction of edges, then permute identifiers."""
    check_probability(ratio, "ratio")
    rng = ensure_rng(seed)
    modified = graph.copy()
    edges = modified.edges()
    rng.shuffle(edges)
    removals = int(round(ratio * len(edges)))
    for u, v in edges[:removals]:
        modified.remove_edge(u, v)
    anonymised, identity = _permute_identifiers(modified, rng)
    return AnonymizedGraph(
        graph=anonymised, true_identity=identity, scheme="sparsification", ratio=ratio
    )


def perturbation_anonymization(
    graph: Graph,
    ratio: float,
    seed: RngLike = None,
) -> AnonymizedGraph:
    """Remove a ``ratio`` fraction of edges and insert the same number of new ones."""
    check_probability(ratio, "ratio")
    rng = ensure_rng(seed)
    modified = graph.copy()
    edges = modified.edges()
    rng.shuffle(edges)
    removals = int(round(ratio * len(edges)))
    for u, v in edges[:removals]:
        modified.remove_edge(u, v)
    nodes = modified.nodes()
    inserted = 0
    attempts = 0
    max_attempts = 50 * max(removals, 1)
    while inserted < removals and attempts < max_attempts:
        attempts += 1
        u = rng.choice(nodes)
        v = rng.choice(nodes)
        if u == v or modified.has_edge(u, v):
            continue
        modified.add_edge(u, v)
        inserted += 1
    anonymised, identity = _permute_identifiers(modified, rng)
    return AnonymizedGraph(
        graph=anonymised, true_identity=identity, scheme="perturbation", ratio=ratio
    )
