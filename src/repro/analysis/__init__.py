"""``repro.analysis`` — the engine's invariant checker (``ned-lint``).

The engine's headline guarantees — bit-identical warm runs, one shared
clock, atomic persistence, canonical fault-site and metric-name registries,
typed failure semantics — were conventions enforced by review and one-off
greps.  This package machine-enforces them: a small AST framework
(:mod:`repro.analysis.core`) runs repo-specific rules
(:mod:`repro.analysis.rules`, stable ``NED-*`` ids) over the tree, with
justified ``# repro: allow[RULE-ID] reason`` suppressions and text/JSON
reporters.  CI runs ``ned-lint`` with findings-as-failures, so a drifted
metric name or an unseeded RNG fails the build instead of silently breaking
a guarantee no tier-1 test targets.

Run it::

    ned-lint                     # or: python -m repro.analysis
    ned-lint --list-rules
    ned-lint --format json -o ned-lint.json src benchmarks examples
"""

from repro.analysis.core import (
    AnalysisResult,
    FileContext,
    Finding,
    PARSE_ERROR_ID,
    REPORT_SCHEMA_VERSION,
    Rule,
    Suppression,
    analyze_paths,
    analyze_source,
    parse_suppressions,
)
from repro.analysis.rules import ALL_RULES, default_rules

__all__ = [
    "ALL_RULES",
    "AnalysisResult",
    "FileContext",
    "Finding",
    "PARSE_ERROR_ID",
    "REPORT_SCHEMA_VERSION",
    "Rule",
    "Suppression",
    "analyze_paths",
    "analyze_source",
    "default_rules",
    "parse_suppressions",
]
