"""Tests for the `NedSession` query-execution layer (PR 5).

Covers the session lifecycle (context-manager save-on-close, double-close,
closed-session guards), plan execution and its equivalence with the
module-level matrix builders, the batched executor's bit-identity with the
per-query path (with fewer-or-equal exact TED* evaluations), and the
asyncio serving facade.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    CrossMatrixPlan,
    KnnPlan,
    NedSession,
    PairwiseMatrixPlan,
    RangePlan,
    TopLPlan,
    TreeStore,
    pairwise_distance_matrix,
)
from repro.exceptions import DistanceError, IndexingError
from repro.graph.generators import barabasi_albert_graph, erdos_renyi_graph
from repro.ted.resolver import DEFAULT_CACHE_SIZE


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(30, 2, seed=9)


@pytest.fixture(scope="module")
def store(graph):
    return TreeStore.from_graph(graph, k=3)


def _mixed_plans(session, graph, nodes):
    """One kNN, range and top-l plan per node — the batched workload."""
    plans = []
    for node in nodes:
        probe = session.probe(graph, node)
        plans.append(KnnPlan(probe, 4))
        plans.append(RangePlan(probe, 6.0))
        plans.append(TopLPlan(probe, 3))
    return plans


class TestSessionLifecycle:
    def test_context_manager_saves_cache_on_close(self, graph, store, tmp_path):
        sidecar = tmp_path / "cache.ned"
        with NedSession(store, cache_file=sidecar) as session:
            cold = session.knn(session.probe(graph, 0), 4)
            assert session.stats.exact_evaluations > 0
            assert not sidecar.exists()  # saved on close, not per query
        assert sidecar.exists()

        with NedSession(store, cache_file=sidecar) as warm:
            assert warm.knn(warm.probe(graph, 0), 4) == cold
            assert warm.stats.exact_evaluations == 0

    def test_double_close_is_a_noop(self, store, tmp_path):
        sidecar = tmp_path / "cache.ned"
        session = NedSession(store, cache_file=sidecar)
        session.knn(store.entries()[0], 3)
        session.close()
        assert session.closed
        first_bytes = sidecar.read_bytes()
        session.close()  # second close: no error, no rewrite
        assert session.closed
        assert sidecar.read_bytes() == first_bytes

    def test_close_saves_even_after_an_exception(self, graph, store, tmp_path):
        sidecar = tmp_path / "cache.ned"
        with pytest.raises(RuntimeError, match="sweep interrupted"):
            with NedSession(store, cache_file=sidecar) as session:
                session.knn(session.probe(graph, 0), 4)
                raise RuntimeError("sweep interrupted")
        # Cached entries are exact regardless, so the sidecar is a valid
        # resume point and must survive the crash.
        assert sidecar.exists()
        with NedSession(store, cache_file=sidecar) as warm:
            warm.knn(warm.probe(graph, 0), 4)
            assert warm.stats.exact_evaluations == 0

    def test_closed_session_rejects_work(self, store):
        session = NedSession(store)
        session.close()
        with pytest.raises(DistanceError, match="closed"):
            session.execute(PairwiseMatrixPlan())
        with pytest.raises(DistanceError, match="closed"):
            session.execute_batch([])
        with pytest.raises(DistanceError, match="closed"):
            session.search_engine()
        with pytest.raises(DistanceError, match="closed"):
            session.serve()

    def test_cache_file_requires_the_cache(self, store, tmp_path):
        with pytest.raises(DistanceError, match="cache"):
            NedSession(store, cache_size=0, cache_file=tmp_path / "cache.ned")

    def test_k_must_match_the_store(self, store):
        with pytest.raises(DistanceError, match="disagrees"):
            NedSession(store, k=store.k + 1)
        assert NedSession(store, k=store.k).k == store.k

    def test_resolver_only_session(self, store):
        with pytest.raises(DistanceError, match="store or an explicit k"):
            NedSession(None)
        session = NedSession(None, k=3, cache_size=0)
        entries = store.entries()
        assert session.resolver.distance(entries[0], entries[1]) >= 0
        with pytest.raises(DistanceError, match="no store"):
            session.execute(PairwiseMatrixPlan())
        with pytest.raises(DistanceError, match="no store"):
            session.search_engine()

    def test_save_cache_needs_a_path(self, store, tmp_path):
        session = NedSession(store)
        with pytest.raises(DistanceError, match="no cache path"):
            session.save_cache()
        target = session.save_cache(tmp_path / "explicit.ned")
        assert target.exists()

    def test_cache_defaults_on_with_one_knob(self, store):
        assert NedSession(store).cache_size == DEFAULT_CACHE_SIZE
        assert NedSession(store, cache_size=7).cache_size == 7
        assert NedSession(store, cache_size=0).cache_size == 0


class TestPlanExecution:
    def test_matrix_plan_matches_module_level_builder(self, store):
        with NedSession(store) as session:
            planned = session.pairwise_matrix(mode="bound-prune")
        direct = pairwise_distance_matrix(store, mode="bound-prune")
        assert planned.values == direct.values

    def test_cross_matrix_plan(self, graph, store):
        other = TreeStore.from_graph(graph, 3, nodes=graph.nodes()[:10])
        with NedSession(store) as session:
            result = session.cross_matrix(other, mode="bound-prune")
        assert len(result.row_nodes) == len(store)
        assert len(result.col_nodes) == 10

    def test_cross_matrix_k_mismatch_rejected(self, graph, store):
        other = TreeStore.from_graph(graph, 2, nodes=graph.nodes()[:5])
        with NedSession(store) as session:
            with pytest.raises(DistanceError, match="disagree on k"):
                session.execute(CrossMatrixPlan(col_store=other))

    def test_unknown_plan_rejected(self, store):
        with NedSession(store) as session:
            with pytest.raises(DistanceError, match="plan"):
                session.execute(object())
            with pytest.raises(DistanceError, match="plan"):
                session.execute_batch([object()])

    def test_point_plan_mode_overrides(self, graph, store):
        with NedSession(store) as session:
            probe = session.probe(graph, 0)
            default = session.knn(probe, 4)
            assert session.knn(probe, 4, mode="exact", index="linear") == default
            hybrid = session.knn(probe, 4, mode="hybrid", index="vptree")
            assert [d for _, d in hybrid] == [d for _, d in default]

    def test_engines_are_cached_per_configuration(self, store):
        with NedSession(store) as session:
            first = session.search_engine(mode="bound-prune")
            assert session.search_engine(mode="bound-prune") is first
            assert session.search_engine(mode="exact") is not first

    def test_engines_share_the_warm_cache(self, graph, store):
        with NedSession(store) as session:
            probe = session.probe(graph, 0)
            scan = session.search_engine(mode="exact", index="linear")
            scan.knn(probe, 4)
            paid = session.stats.exact_evaluations
            assert paid > 0
            # A different engine over the same session answers the repeated
            # probe pairs from the shared cache.
            pruned = session.search_engine(mode="bound-prune")
            pruned.knn(probe, 4)
            assert session.stats.exact_evaluations == paid

    def test_session_stats_count_engine_pairs(self, graph, store):
        with NedSession(store) as session:
            session.knn(session.probe(graph, 0), 4)
            assert session.stats.pairs_considered == len(store)


class TestBatchedExecutor:
    def test_batched_identical_to_per_query_with_fewer_exact_evals(self, graph, store):
        nodes = graph.nodes()[:8]
        with NedSession(store) as reference_session:
            plans = _mixed_plans(reference_session, graph, nodes)

        # Per-query path: a fresh session per plan, each a cold resolver.
        per_query = []
        per_query_exact = 0
        for plan in plans:
            with NedSession(store) as single:
                per_query.append(single.execute(plan))
                per_query_exact += single.stats.exact_evaluations

        with NedSession(store) as session:
            batched = session.execute_batch(plans)
            assert batched == per_query
            assert session.stats.exact_evaluations <= per_query_exact
            assert session.batches_executed == 1
            assert session.batched_plans == len(plans)

    def test_equal_signature_plans_computed_once_and_fanned_out(self, graph, store):
        with NedSession(store) as session:
            probe = session.probe(graph, 0)
            plans = [KnnPlan(probe, 4)] * 3 + [KnnPlan(session.probe(graph, 0), 4)]
            answers = session.execute_batch(plans)
            assert session.deduplicated_plans == 3
            assert answers[0] == answers[1] == answers[2] == answers[3]
            # Fan-out hands every requester an independent list.
            answers[0].append("marker")
            assert answers[1][-1] != "marker"

    def test_matrix_plans_ride_in_batches(self, store):
        with NedSession(store) as session:
            results = session.execute_batch(
                [PairwiseMatrixPlan(mode="bound-prune"),
                 PairwiseMatrixPlan(mode="bound-prune")]
            )
            assert results[0].values == results[1].values
            assert session.deduplicated_plans == 1
            # Fan-out hands each requester an independent matrix: mutating
            # one (e.g. applying a threshold in place) must not leak.
            assert results[0] is not results[1]
            results[0].values[0][1] = float("inf")
            assert results[1].values[0][1] != float("inf")

    @settings(max_examples=6, deadline=None)
    @given(
        nodes=st.integers(min_value=6, max_value=20),
        seed=st.integers(min_value=0, max_value=10**6),
        count=st.integers(min_value=1, max_value=4),
    )
    def test_batched_equivalence_property(self, nodes, seed, count):
        random_graph = erdos_renyi_graph(nodes, 0.25, seed=seed)
        random_store = TreeStore.from_graph(random_graph, 2)
        query_nodes = random_graph.nodes()[: min(6, nodes)]
        with NedSession(random_store) as session:
            plans = []
            for node in query_nodes:
                probe = session.probe(random_graph, node)
                plans.append(KnnPlan(probe, count))
                plans.append(TopLPlan(probe, count))
                plans.append(RangePlan(probe, 3.0))

        per_query = []
        per_query_exact = 0
        for plan in plans:
            with NedSession(random_store) as single:
                per_query.append(single.execute(plan))
                per_query_exact += single.stats.exact_evaluations

        with NedSession(random_store) as session:
            batched = session.execute_batch(plans)
            assert batched == per_query
            assert session.stats.exact_evaluations <= per_query_exact


class TestSessionServer:
    def test_async_results_match_sequential(self, graph, store):
        nodes = graph.nodes()[:10]

        with NedSession(store) as session:
            plans = [KnnPlan(session.probe(graph, node), 4) for node in nodes]
            sequential = [session.execute(plan) for plan in plans]

        async def serve():
            with NedSession(store) as serving_session:
                async with serving_session.serve() as server:
                    results = await server.map(plans)
                return results, server.ticks, server.served

        results, ticks, served = asyncio.run(serve())
        assert results == sequential
        assert served == len(plans)
        # Concurrent submissions coalesce into far fewer batch ticks than
        # one-per-query serving would take.
        assert 1 <= ticks < len(plans)

    def test_requests_during_a_tick_form_the_next_batch(self, graph, store):
        async def staggered():
            with NedSession(store) as session:
                probe = session.probe(graph, 0)
                async with session.serve() as server:
                    first = asyncio.create_task(server.submit(KnnPlan(probe, 3)))
                    await asyncio.sleep(0)  # let the first tick start
                    second = asyncio.create_task(server.submit(KnnPlan(probe, 5)))
                    return await first, await second, server.ticks

        first, second, ticks = asyncio.run(staggered())
        assert len(first) == 3 and len(second) == 5
        assert ticks >= 1

    def test_submit_outside_serving_context_rejected(self, graph, store):
        async def misuse():
            with NedSession(store) as session:
                probe = session.probe(graph, 0)
                server = session.serve()
                with pytest.raises(DistanceError, match="not serving"):
                    await server.submit(KnnPlan(probe, 3))
                async with server:
                    assert await server.submit(KnnPlan(probe, 3))

        asyncio.run(misuse())

    def test_bad_plans_propagate_to_the_submitter(self, graph, store):
        async def bad():
            with NedSession(store) as session:
                probe = session.probe(graph, 0)
                async with session.serve() as server:
                    with pytest.raises(IndexingError, match="positive"):
                        await server.submit(KnnPlan(probe, 0))
                    # The server keeps serving after a failed plan.
                    return await server.submit(KnnPlan(probe, 3))

        assert len(asyncio.run(bad())) == 3

    def test_max_batch_validation(self, store):
        with NedSession(store) as session:
            with pytest.raises(DistanceError, match="max_batch"):
                session.serve(max_batch=0)


class TestReviewRegressions:
    """Regressions from the PR-5 review pass."""

    def test_cache_off_batches_do_not_dedup_or_reorder(self, graph, store):
        # cache_size=0 means "measure the raw work": the batch must execute
        # every plan individually, in submission order, with per-query
        # counters identical to the per-query path — the tier ablations'
        # exact-eval columns depend on it.
        with NedSession(store, cache_size=0) as session:
            probe = session.probe(graph, 0)
            plans = [TopLPlan(probe, 3)] * 3
            per_query_exact = 0
            for plan in plans:
                with NedSession(store, cache_size=0) as single:
                    single.execute(plan)
                    per_query_exact += single.stats.exact_evaluations
            session.execute_batch(plans)
            assert session.deduplicated_plans == 0
            assert session.stats.exact_evaluations == per_query_exact

    def test_matrix_plans_run_before_point_plans(self, graph, store):
        # The matrix build warms the cache broadest, so a kNN plan submitted
        # *before* the matrix plan must still be answered entirely from the
        # matrix's work.
        with NedSession(store) as matrix_only:
            matrix_only.pairwise_matrix(mode="exact")
            matrix_exact = matrix_only.stats.exact_evaluations
        with NedSession(store) as session:
            plans = [KnnPlan(session.probe(graph, 0), 4),
                     PairwiseMatrixPlan(mode="exact")]
            session.execute_batch(plans)
            assert session.stats.exact_evaluations == matrix_exact

    def test_one_bad_plan_does_not_fail_its_tick_neighbours(self, graph, store):
        with NedSession(store) as baseline:
            probe = baseline.probe(graph, 0)
            baseline.knn(probe, 3)
            one_query_exact = baseline.stats.exact_evaluations

        async def mixed_tick():
            with NedSession(store) as session:
                good = KnnPlan(probe, 3)
                bad = KnnPlan(probe, 0)
                async with session.serve() as server:
                    results = await asyncio.gather(
                        server.submit(good), server.submit(bad),
                        server.submit(good), return_exceptions=True,
                    )
                return results, server.ticks, session.stats.exact_evaluations

        results, ticks, exact = asyncio.run(mixed_tick())
        assert len(results[0]) == 3 and results[0] == results[2]
        assert isinstance(results[1], IndexingError)
        assert ticks >= 1
        # The failed plan must not make the batch re-run (and re-pay for)
        # its neighbours: the good plan executes exactly once.
        assert exact == one_query_exact

    def test_execute_batch_return_exceptions(self, graph, store):
        with NedSession(store) as session:
            probe = session.probe(graph, 0)
            results = session.execute_batch(
                [KnnPlan(probe, 3), KnnPlan(probe, 0), object()],
                return_exceptions=True,
            )
            assert len(results[0]) == 3
            assert isinstance(results[1], IndexingError)
            assert isinstance(results[2], DistanceError)
            # Without the flag, the first failure raises.
            with pytest.raises(IndexingError):
                session.execute_batch([KnnPlan(probe, 0)])

    def test_matrix_plans_count_into_session_pairs(self, graph, store):
        with NedSession(store) as session:
            matrix = session.pairwise_matrix(mode="bound-prune")
            session.knn(session.probe(graph, 0), 4)
            assert session.stats.pairs_considered == (
                matrix.stats.pairs_considered + len(store)
            )
            assert 0.0 <= session.stats.pruning_ratio <= 1.0

    def test_unknown_executor_rejected_at_open(self, store):
        with pytest.raises(DistanceError, match="executor"):
            NedSession(store, executor="proces")
        assert NedSession(store, executor=lambda chunks: []).executor is not None

    def test_session_backed_engine_rejects_resolver_overrides(self, store):
        with NedSession(store) as session:
            with pytest.raises(IndexingError, match="backend"):
                session.search_engine().__class__(
                    session=session, backend="hungarian"
                )
            with pytest.raises(IndexingError, match="cache_size"):
                session.search_engine().__class__(session=session, cache_size=0)
            with pytest.raises(IndexingError, match="tiers"):
                session.search_engine().__class__(
                    session=session, tiers=("signature",)
                )

    def test_session_adopts_sidecar_hit_counts(self, graph, store, tmp_path):
        # Hotness must accumulate across session lifecycles: open -> queries
        # -> save-on-close -> reopen, with hit counts carried forward (the
        # eviction-aware trim depends on them).
        import pickle

        sidecar = tmp_path / "cache.ned"
        probe_node = graph.nodes()[0]
        with NedSession(store, cache_file=sidecar) as session:
            probe = session.probe(graph, probe_node)
            session.knn(probe, 4)
            session.knn(probe, 4)  # repeats hit the cache
            first_hits = session.stats.cache_hits
            assert first_hits > 0
        saved = pickle.loads(sidecar.read_bytes())
        assert sum(hits for *_, hits in saved["entries"]) == first_hits

        with NedSession(store, cache_file=sidecar) as again:
            again.knn(again.probe(graph, probe_node), 4)
        resaved = pickle.loads(sidecar.read_bytes())
        assert (
            sum(hits for *_, hits in resaved["entries"])
            > sum(hits for *_, hits in saved["entries"])
        )

    def test_session_backed_engine_refuses_queries_after_close(self, graph, store):
        with NedSession(store) as session:
            engine = session.search_engine(mode="bound-prune")
            probe = session.probe(graph, 0)
            assert engine.knn(probe, 3)
        with pytest.raises(IndexingError, match="closed"):
            engine.knn(probe, 3)
        # Standalone engines own a never-closed session and keep working.
        standalone = engine.__class__(store, mode="bound-prune")
        assert standalone.knn(probe, 3)


class TestSessionResilience:
    """PR-8 resilience semantics at the session and serving layers."""

    def test_broken_sidecar_raises_under_strict_default(self, store, tmp_path):
        sidecar = tmp_path / "cache.ned"
        sidecar.write_bytes(b"not a sidecar at all")
        with pytest.raises(DistanceError):
            NedSession(store, cache_file=sidecar)

    def test_broken_sidecar_cold_starts_under_lenient_policy(
        self, graph, store, tmp_path
    ):
        import warnings

        from repro.resilience import ResiliencePolicy, ResilienceWarning

        sidecar = tmp_path / "cache.ned"
        sidecar.write_bytes(b"not a sidecar at all")
        policy = ResiliencePolicy(sidecar="cold_start")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with NedSession(store, cache_file=sidecar, resilience=policy) as session:
                assert session.sidecar_cold_start
                result = session.knn(session.probe(graph, 0), 4)
                assert session.stats.exact_evaluations > 0  # really cold
        assert result
        assert any(issubclass(w.category, ResilienceWarning) for w in caught)
        snapshot = session.metrics_snapshot()
        assert snapshot["resilience"]["sidecar_cold_starts"] == 1
        # close() rewrote a valid sidecar over the broken one.
        with NedSession(store, cache_file=sidecar) as warm:
            assert warm.knn(warm.probe(graph, 0), 4) == result
            assert warm.stats.exact_evaluations == 0

    def test_plan_deadline_raises_typed_error(self, store):
        from repro.exceptions import DeadlineError
        from repro.resilience import ResiliencePolicy

        policy = ResiliencePolicy(deadline=1e-9)
        with NedSession(store, resilience=policy) as session:
            with pytest.raises(DeadlineError, match="deadline"):
                session.execute(PairwiseMatrixPlan(mode="exact"))
            snapshot = session.metrics_snapshot()
        assert snapshot["resilience"]["deadline_exceeded"] == 1

    def test_resilience_off_is_allowed_and_unguarded(self, graph, store):
        with NedSession(store, resilience=False) as session:
            assert session.resilience is None
            result = session.knn(session.probe(graph, 0), 4)
            snapshot = session.metrics_snapshot()
        assert result
        assert snapshot["resilience"]["enabled"] is False
        assert "breakers" not in snapshot["resilience"]

    def test_shutdown_resolves_in_flight_and_queued_requests(self, graph, store):
        # Satellite (d): aclose() during a busy burst must resolve every
        # future — in-flight and still-queued alike — and never hang.
        async def scenario():
            with NedSession(store) as session:
                plans = [
                    KnnPlan(session.probe(graph, node), 4)
                    for node in graph.nodes()[:8]
                ]
                async with session.serve(max_batch=2) as server:
                    tasks = [
                        asyncio.create_task(server.submit(plan)) for plan in plans
                    ]
                    await asyncio.sleep(0)  # first tick starts, rest queue up
                    await server.aclose()
                    return await asyncio.wait_for(
                        asyncio.gather(*tasks), timeout=30.0
                    )

        results = asyncio.run(scenario())
        assert len(results) == 8 and all(len(r) == 4 for r in results)

    def test_expired_queued_request_gets_deadline_error_not_a_hang(
        self, graph, store
    ):
        from repro.exceptions import DeadlineError
        from repro.resilience import FaultPlan, FaultSpec

        # A delay fault holds the first tick while later requests sit queued
        # past their deadline; map() must surface DeadlineError, not block.
        plan = FaultPlan([FaultSpec("serving.tick", kind="delay", delay=0.3)])

        async def scenario():
            with NedSession(store, faults=plan) as session:
                probe = session.probe(graph, 0)
                async with session.serve(request_deadline=0.05) as server:
                    first = asyncio.create_task(server.submit(KnnPlan(probe, 3)))
                    await asyncio.sleep(0.05)  # tick 1 holds; these will queue
                    with pytest.raises(DeadlineError, match="expired while queued"):
                        await asyncio.wait_for(
                            server.map([KnnPlan(probe, 4), KnnPlan(probe, 5)]),
                            timeout=30.0,
                        )
                    await first  # the in-flight request still completes
                return session.metrics_snapshot()

        snapshot = asyncio.run(scenario())
        assert snapshot["resilience"]["deadline_exceeded"] >= 1

    def test_full_queue_sheds_with_overload_error(self, graph, store):
        from repro.exceptions import OverloadError
        from repro.resilience import FaultPlan, FaultSpec

        plan = FaultPlan([FaultSpec("serving.tick", kind="delay", delay=0.3)])

        async def scenario():
            with NedSession(store, faults=plan) as session:
                probe = session.probe(graph, 0)
                async with session.serve(max_queue_depth=1) as server:
                    first = asyncio.create_task(server.submit(KnnPlan(probe, 3)))
                    await asyncio.sleep(0.05)  # drain took it; tick 1 is held
                    second = asyncio.create_task(server.submit(KnnPlan(probe, 4)))
                    await asyncio.sleep(0)  # second occupies the whole queue
                    with pytest.raises(OverloadError, match="shed"):
                        await server.submit(KnnPlan(probe, 5))
                    results = await asyncio.wait_for(
                        asyncio.gather(first, second), timeout=30.0
                    )
                return results, server.shed, session.metrics_snapshot()

        results, shed, snapshot = asyncio.run(scenario())
        assert [len(r) for r in results] == [3, 4]  # admitted requests answered
        assert shed == 1
        assert snapshot["resilience"]["shed_requests"] == 1
        assert snapshot["gauges"]["serving.queue_depth_hwm"] >= 1

    def test_serve_parameter_validation(self, store):
        with NedSession(store) as session:
            with pytest.raises(DistanceError, match="max_queue_depth"):
                session.serve(max_queue_depth=0)
            with pytest.raises(DistanceError, match="request_deadline"):
                session.serve(request_deadline=0.0)

    def test_rejects_bad_resilience_argument(self, store):
        with pytest.raises(DistanceError, match="resilience"):
            NedSession(store, resilience="on")
