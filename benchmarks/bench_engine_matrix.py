"""Engine distance matrices — serial vs process vs bound-pruned builds.

Times :func:`repro.engine.pairwise_distance_matrix` over the same tree store
in several configurations (serial exact, a reference build with the
pure-Python Hungarian backend and the distance cache off, process-parallel
exact, bound-pruned with level-size bounds only, bound-pruned with the full
signature → level-size → degree-multiset cascade), verifies they produce
identical matrices, and reports the per-tier resolution counts — how many
pairs each tier answered (signature hits, coinciding bounds, cache hits) —
so the pruning and caching wins are visible straight from the CI smoke
output.

A second, repeated-probe workload runs kNN for every graph node through one
:class:`repro.engine.NedSearchEngine` twice — once with the signature-keyed
distance cache on, once off — verifies the results are identical, and
reports the cache hit rate.

Both workloads are recorded machine-readably in ``BENCH_kernel.json``
(pairs/sec, cache hit rate, per-configuration timings, and the speedup of
the default exact build over the reference configuration), so the kernel's
perf trajectory is tracked from PR 3 onward.

Runs two ways:

* under pytest-benchmark with the rest of the suite::

      PYTHONPATH=src python -m pytest benchmarks/bench_engine_matrix.py --benchmark-only

* standalone, as the CI smoke check::

      PYTHONPATH=src python benchmarks/bench_engine_matrix.py --smoke
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Optional, Tuple

from repro.engine.matrix import pairwise_distance_matrix
from repro.engine.search import NedSearchEngine
from repro.engine.tree_store import TreeStore
from repro.experiments.reporting import ExperimentTable
from repro.graph.generators import barabasi_albert_graph
from repro.ted.resolver import DEFAULT_CACHE_SIZE
from repro.ted.ted_star import ted_star
from repro.utils.timer import Timer

# The reference configuration approximates the pre-PR-3 kernel cost profile
# (pure-Python Hungarian matching, no distance cache); it is timed but kept
# out of the value-identity assertion because the Hungarian and SciPy
# solvers may legitimately pick different optimal matchings on tie pairs.
REFERENCE = "reference[hungarian,no-cache]"

CONFIGURATIONS: Tuple[Tuple[str, Dict[str, object]], ...] = (
    ("serial", dict(mode="exact", executor="serial")),
    (REFERENCE,
     dict(mode="exact", executor="serial", backend="hungarian", cache_size=0)),
    ("process", dict(mode="exact", executor="process")),
    ("bound-prune[level-size]",
     dict(mode="bound-prune", executor="serial", tiers=("signature", "level-size"))),
    ("bound-prune", dict(mode="bound-prune", executor="serial")),
)


def _tier_columns(stats) -> Dict[str, int]:
    """The per-tier resolution counts reported for every configuration."""
    return dict(
        signature_hits=stats.signature_hits,
        decided_level_size=stats.decided_by_level_size,
        decided_degree=stats.decided_by_degree,
        pruned_lower_bound=stats.pruned_by_lower_bound,
        cache_hits=stats.cache_hits,
    )


def build_matrices(
    nodes: int = 120, k: int = 3, seed: int = 5, record: Optional[dict] = None
) -> ExperimentTable:
    """Build the all-pairs matrix under every configuration and tabulate.

    When ``record`` is given, per-configuration measurements (build time,
    pairs/sec, cache hit rate) are appended to it for the JSON trail.
    """
    graph = barabasi_albert_graph(nodes, 2, seed=seed)
    with Timer() as extraction_timer:
        store = TreeStore.from_graph(graph, k)
    pair_count = len(store) * (len(store) - 1) // 2
    # Warm the kernel once so the SciPy backend's first-call import cost is
    # not billed to whichever configuration happens to run first.
    entries = store.entries()
    ted_star(entries[0].tree, entries[-1].tree, k=k)
    table = ExperimentTable(
        title=f"Engine matrix build: {nodes} nodes, k={k} ({pair_count} pairs)",
        columns=["configuration", "executor_used", "build_time", "exact_evaluations",
                 "signature_hits", "decided_level_size", "decided_degree",
                 "pruned_lower_bound", "cache_hits"],
        notes=[f"tree extraction: {extraction_timer.elapsed:.3f}s (shared by all builds)"],
    )
    timings: Dict[str, float] = {}
    reference = None
    for name, options in CONFIGURATIONS:
        with Timer() as timer:
            result = pairwise_distance_matrix(store, **options)
        if name == REFERENCE:
            pass  # timed only; solver tie-breaks may differ legitimately
        elif reference is None:
            reference = result
        elif result.values != reference.values:
            raise AssertionError(f"{name} build disagrees with the serial exact matrix")
        timings[name] = timer.elapsed
        table.add_row(
            configuration=name,
            executor_used=result.executor_used,
            build_time=timer.elapsed,
            exact_evaluations=result.stats.exact_evaluations,
            **_tier_columns(result.stats),
        )
        if record is not None:
            record.setdefault("configurations", []).append(dict(
                configuration=name,
                executor_used=result.executor_used,
                build_time=timer.elapsed,
                pairs_per_sec=pair_count / timer.elapsed if timer.elapsed else None,
                exact_evaluations=result.stats.exact_evaluations,
                cache_hits=result.stats.cache_hits,
                cache_misses=result.stats.cache_misses,
                cache_hit_rate=result.stats.cache_hit_rate,
            ))

    if record is not None:
        record["workload"] = dict(nodes=nodes, k=k, seed=seed, pairs=pair_count)
        if timings.get("serial"):
            record["speedup_exact_vs_reference"] = timings[REFERENCE] / timings["serial"]

    # Range-style workloads only need entries below a radius: with a
    # threshold, the lower bound can discard pairs outright (entries become
    # inf), which is where matrix-level pruning really pays.
    finite = sorted(
        value for i, row in enumerate(reference.values) for value in row[i + 1:]
    )
    threshold = finite[len(finite) // 4] if finite else 0.0
    with Timer() as timer:
        thresholded = pairwise_distance_matrix(store, mode="bound-prune", threshold=threshold)
    for i, row in enumerate(thresholded.values):
        for j, value in enumerate(row):
            if value != float("inf") and value != reference.values[i][j]:
                raise AssertionError("thresholded build changed a kept entry")
    table.add_row(
        configuration=f"bound-prune<= {threshold:g}",
        executor_used=thresholded.executor_used,
        build_time=timer.elapsed,
        exact_evaluations=thresholded.stats.exact_evaluations,
        **_tier_columns(thresholded.stats),
    )
    return table


def repeated_probe_workload(
    nodes: int = 40, k: int = 3, seed: int = 5, record: Optional[dict] = None
) -> ExperimentTable:
    """kNN for every graph node, distance cache on vs off.

    The acceptance check of the cache tier: identical neighbour lists either
    way, nonzero hits with the cache on (recurring signature pairs across
    the per-node probes are answered from memory).
    """
    graph = barabasi_albert_graph(nodes, 2, seed=seed)
    store = TreeStore.from_graph(graph, k)
    table = ExperimentTable(
        title=f"Repeated-probe kNN sweep: every node of {nodes}, k={k}",
        columns=["cache", "sweep_time", "exact_evaluations", "cache_hits",
                 "cache_misses", "cache_hit_rate"],
    )
    results = {}
    for cache_size in (DEFAULT_CACHE_SIZE, 0):
        engine = NedSearchEngine(store, mode="bound-prune", cache_size=cache_size)
        with Timer() as timer:
            answers = [
                engine.knn(engine.probe(graph, node), 5) for node in graph.nodes()
            ]
        results[cache_size] = answers
        label = "on" if cache_size else "off"
        table.add_row(
            cache=label,
            sweep_time=timer.elapsed,
            exact_evaluations=engine.stats.exact_evaluations,
            cache_hits=engine.stats.cache_hits,
            cache_misses=engine.stats.cache_misses,
            cache_hit_rate=engine.stats.cache_hit_rate,
        )
        if record is not None:
            record.setdefault("sweeps", []).append(dict(
                cache=label,
                sweep_time=timer.elapsed,
                exact_evaluations=engine.stats.exact_evaluations,
                cache_hits=engine.stats.cache_hits,
                cache_misses=engine.stats.cache_misses,
                cache_hit_rate=engine.stats.cache_hit_rate,
            ))
    if results[DEFAULT_CACHE_SIZE] != results[0]:
        raise AssertionError("cache-on kNN sweep disagrees with cache-off")
    if record is not None:
        record["identical_cache_on_off"] = True
        record["workload"] = dict(nodes=nodes, k=k, seed=seed, queries=nodes)
    return table


def test_engine_matrix_builds(benchmark):
    """All build configurations agree; each extra tier skips more exact work."""
    from _bench_utils import emit_table

    table = benchmark.pedantic(build_matrices, rounds=1, iterations=1)
    emit_table(table)
    by_name = {row["configuration"]: row for row in table.rows}
    assert by_name["bound-prune"]["exact_evaluations"] <= (
        by_name["bound-prune[level-size]"]["exact_evaluations"]
    )
    assert (
        by_name["bound-prune[level-size]"]["exact_evaluations"]
        <= by_name["serial"]["exact_evaluations"]
    )
    cheap = (
        by_name["bound-prune"]["signature_hits"]
        + by_name["bound-prune"]["decided_level_size"]
        + by_name["bound-prune"]["decided_degree"]
        + by_name["bound-prune"]["pruned_lower_bound"]
        + by_name["bound-prune"]["cache_hits"]
    )
    assert cheap > 0


def test_repeated_probe_cache(benchmark):
    """Cache-on and cache-off sweeps agree and the cache actually hits."""
    from _bench_utils import emit_table

    record: dict = {}
    table = benchmark.pedantic(
        repeated_probe_workload, kwargs=dict(nodes=25, record=record),
        rounds=1, iterations=1,
    )
    emit_table(table)
    by_cache = {row["cache"]: row for row in table.rows}
    assert by_cache["on"]["cache_hits"] > 0
    assert record["identical_cache_on_off"]


def main(argv=None) -> int:
    from _bench_utils import emit_bench_json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload for CI (seconds, not minutes)")
    parser.add_argument("--nodes", type=int, default=None,
                        help="graph size (default: 40 with --smoke, 120 otherwise)")
    parser.add_argument("--k", type=int, default=3, help="tree levels (default 3)")
    args = parser.parse_args(argv)
    nodes = args.nodes if args.nodes is not None else (40 if args.smoke else 120)

    matrix_record: dict = {}
    print(build_matrices(nodes=nodes, k=args.k, record=matrix_record))
    probe_record: dict = {}
    print(repeated_probe_workload(nodes=nodes, k=args.k, record=probe_record))
    emit_bench_json("engine_matrix", matrix_record)
    emit_bench_json("repeated_probe", probe_record)
    speedup = matrix_record.get("speedup_exact_vs_reference")
    if speedup:
        print(f"exact-mode speedup vs {REFERENCE}: {speedup:.2f}x "
              "(recorded in BENCH_kernel.json)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
