"""Tests for the BK-tree metric index (integer-valued metrics such as TED*)."""

import random

import pytest

from repro.exceptions import IndexingError
from repro.index.bktree import BKTree
from repro.index.linear_scan import LinearScanIndex
from repro.ted.ted_star import ted_star
from repro.trees.random_trees import random_tree_with_depth


def integer_distance(a: int, b: int) -> int:
    return abs(a - b)


@pytest.fixture
def integer_items():
    rng = random.Random(3)
    return [rng.randrange(0, 500) for _ in range(150)]


class TestBKTreeOverIntegers:
    def test_knn_matches_linear_scan(self, integer_items):
        bktree = BKTree(integer_items, integer_distance)
        scan = LinearScanIndex(integer_items, integer_distance)
        for query in (0, 250, 499, 123):
            bk_distances = [d for _, d in bktree.knn(query, 5)]
            scan_distances = [d for _, d in scan.knn(query, 5)]
            assert bk_distances == scan_distances

    def test_range_matches_linear_scan(self, integer_items):
        bktree = BKTree(integer_items, integer_distance)
        scan = LinearScanIndex(integer_items, integer_distance)
        for query, radius in ((100, 20), (400, 3), (250, 500)):
            bk_items = sorted(item for item, _ in bktree.range_search(query, radius))
            scan_items = sorted(item for item, _ in scan.range_search(query, radius))
            assert bk_items == scan_items

    def test_range_prunes(self, integer_items):
        bktree = BKTree(integer_items, integer_distance)
        bktree.range_search(250, 5)
        assert bktree.last_query_distance_calls < len(integer_items)

    def test_duplicates_handled(self):
        bktree = BKTree([7, 7, 7, 3, 11], integer_distance)
        result = bktree.knn(7, 3)
        assert [d for _, d in result] == [0, 0, 0]

    def test_invalid_arguments(self, integer_items):
        bktree = BKTree(integer_items, integer_distance)
        with pytest.raises(IndexingError):
            bktree.knn(0, 0)
        with pytest.raises(IndexingError):
            bktree.range_search(0, -1)
        with pytest.raises(IndexingError):
            BKTree([], integer_distance)

    def test_build_distance_calls_counted(self, integer_items):
        bktree = BKTree(integer_items, integer_distance)
        assert bktree.build_distance_calls >= len(integer_items) - 1


class TestBKTreeOverTedStar:
    def test_knn_over_trees_matches_scan(self):
        rng = random.Random(11)
        trees = [random_tree_with_depth(rng.randint(2, 10), 3, seed=rng.randrange(10**9))
                 for _ in range(35)]
        metric = lambda a, b: ted_star(a, b, k=4)  # noqa: E731
        bktree = BKTree(trees, metric)
        scan = LinearScanIndex(trees, metric)
        query = random_tree_with_depth(7, 3, seed=99)
        assert [d for _, d in bktree.knn(query, 5)] == [d for _, d in scan.knn(query, 5)]

    def test_range_over_trees_matches_scan(self):
        rng = random.Random(13)
        trees = [random_tree_with_depth(rng.randint(2, 8), 3, seed=rng.randrange(10**9))
                 for _ in range(25)]
        metric = lambda a, b: ted_star(a, b, k=4)  # noqa: E731
        bktree = BKTree(trees, metric)
        scan = LinearScanIndex(trees, metric)
        query = trees[0]
        bk_distances = sorted(d for _, d in bktree.range_search(query, 3.0))
        scan_distances = sorted(d for _, d in scan.range_search(query, 3.0))
        assert bk_distances == scan_distances
