"""``ned-lint`` — the repository's invariant checker, as a command.

Usage::

    ned-lint                       # lint src/, benchmarks/, examples/
    ned-lint src/repro             # lint one tree
    ned-lint --format json -o report.json src benchmarks examples
    ned-lint --list-rules          # rule table (ids, names, contracts)
    ned-lint --select NED-DET01,NED-EXC01 src
    ned-lint --show-suppressed src

Exit codes: 0 — clean (suppressed findings allowed), 1 — at least one
unsuppressed finding, 2 — usage error.  ``python -m repro.analysis`` is the
same program.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.core import AnalysisResult, Rule, analyze_paths
from repro.analysis.rules import ALL_RULES

#: Directories linted when no paths are given (those that exist under cwd).
DEFAULT_TARGETS = ("src", "benchmarks", "examples")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ned-lint",
        description=(
            "AST-based invariant checker for the NED engine: determinism, "
            "layering, import hygiene, atomic persistence, fault-site and "
            "metric-name registries, exception and lock discipline."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src benchmarks examples)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=None,
        help="write the report to this file instead of stdout",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list suppressed findings (text format)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="directory findings are reported relative to (default: cwd)",
    )
    return parser


def select_rules(select: Optional[str], ignore: Optional[str]) -> List[Rule]:
    """Resolve ``--select``/``--ignore`` id lists to rule instances."""
    known = {rule.rule_id: rule for rule in ALL_RULES}

    def parse_ids(raw: str) -> List[str]:
        ids = [part.strip() for part in raw.split(",") if part.strip()]
        unknown = [rule_id for rule_id in ids if rule_id not in known]
        if unknown:
            raise SystemExit(
                f"ned-lint: unknown rule id(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
        return ids

    chosen = list(ALL_RULES) if select is None else [known[i] for i in parse_ids(select)]
    if ignore is not None:
        dropped = set(parse_ids(ignore))
        chosen = [rule for rule in chosen if rule.rule_id not in dropped]
    return [rule() for rule in chosen]


def render_rule_table() -> str:
    width = max(len(rule.rule_id) for rule in ALL_RULES)
    lines = [
        f"{rule.rule_id:<{width}}  {rule.name:<24} {rule.description}"
        for rule in ALL_RULES
    ]
    lines.append("")
    lines.append(
        "suppress with: # repro: allow[RULE-ID] <one-line reason>  "
        "(reason mandatory; allow[*] covers every rule on the line)"
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_table())
        return 0

    if args.paths:
        targets = args.paths
    else:
        targets = [Path(name) for name in DEFAULT_TARGETS if Path(name).is_dir()]
        if not targets:
            parser.error(
                "no paths given and none of src/, benchmarks/, examples/ "
                "exist under the current directory"
            )
    missing = [str(path) for path in targets if not path.exists()]
    if missing:
        parser.error(f"path(s) do not exist: {', '.join(missing)}")

    try:
        rules = select_rules(args.select, args.ignore)
    except SystemExit as error:
        if isinstance(error.code, str):
            print(error.code, file=sys.stderr)
            return 2
        raise

    result: AnalysisResult = analyze_paths(targets, rules, root=args.root)
    if args.format == "json":
        report = result.render_json()
    else:
        report = result.render_text(show_suppressed=args.show_suppressed)
    if args.output is not None:
        args.output.write_text(report + "\n", encoding="utf-8")
        summary = result.to_json()["summary"]
        print(
            f"ned-lint: wrote {args.format} report to {args.output} "
            f"({summary['findings']} finding(s), "
            f"{summary['suppressed']} suppressed)"
        )
    else:
        print(report)
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via console entry
    raise SystemExit(main())
