"""De-anonymization via inter-graph node similarity (Section 13.5).

Setup: a *training graph* whose node identities are known, and an
*anonymised testing graph* produced by one of the schemes in
:mod:`repro.anonymize.anonymizers`.  For every anonymised node, the attacker
computes its similarity to the training nodes and keeps the top-``l`` most
similar ones; the node counts as successfully de-anonymised when its true
identity appears in that top-``l`` list.  The *precision* of a method is the
fraction of anonymised nodes successfully de-anonymised.

The evaluation is measure-agnostic: it takes a ``distance(train_node,
anon_node) -> float`` callable, so NED and the feature-based baseline plug in
through the same interface (and the benchmark harness reports both, as in
Figures 10-11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.anonymize.anonymizers import AnonymizedGraph
from repro.exceptions import ExperimentError
from repro.graph.graph import Graph
from repro.utils.rng import RngLike, sample_distinct
from repro.utils.validation import check_positive_int

Node = Hashable
PairDistance = Callable[[Node, Node], float]


@dataclass(frozen=True)
class DeanonymizationReport:
    """Outcome of a de-anonymization experiment.

    Attributes
    ----------
    precision:
        Fraction of evaluated anonymised nodes whose true identity appeared in
        their top-l candidate list.
    evaluated:
        Number of anonymised nodes evaluated.
    hits:
        Number of successful re-identifications.
    top_l:
        The ``l`` used for the candidate lists.
    scheme:
        The anonymization scheme evaluated.
    """

    precision: float
    evaluated: int
    hits: int
    top_l: int
    scheme: str


def deanonymize_node(
    anon_node: Node,
    training_nodes: Sequence[Node],
    distance: PairDistance,
    top_l: int,
) -> List[Tuple[Node, float]]:
    """Return the top-``l`` training candidates for one anonymised node.

    Candidates are sorted by ascending distance; ties are kept in a
    deterministic order so results are reproducible.
    """
    check_positive_int(top_l, "top_l")
    scored = [(train, distance(train, anon_node)) for train in training_nodes]
    scored.sort(key=lambda pair: (pair[1], repr(pair[0])))
    return scored[:top_l]


def deanonymization_precision(
    training_graph: Graph,
    anonymized: AnonymizedGraph,
    distance: PairDistance,
    top_l: int,
    sample_size: Optional[int] = None,
    seed: RngLike = 0,
    candidate_nodes: Optional[Sequence[Node]] = None,
) -> DeanonymizationReport:
    """Evaluate de-anonymization precision of a similarity measure.

    Parameters
    ----------
    training_graph:
        The graph with known identities (candidates are its nodes unless
        ``candidate_nodes`` restricts them).
    anonymized:
        The anonymised testing graph plus ground-truth identity mapping.
    distance:
        ``distance(training_node, anonymised_node)`` — smaller means more
        similar.  For NED this wraps :class:`repro.core.ned.NedComputer`;
        for the feature baseline it wraps a feature-vector distance.
    top_l:
        Size of the candidate list per anonymised node.
    sample_size:
        Evaluate only a random sample of anonymised nodes (useful because a
        full quadratic evaluation is expensive); ``None`` evaluates all.
    seed:
        Sampling seed.
    candidate_nodes:
        Restrict the training candidates (defaults to every training node).
    """
    check_positive_int(top_l, "top_l")
    candidates = list(candidate_nodes) if candidate_nodes is not None else training_graph.nodes()
    if not candidates:
        raise ExperimentError("no candidate training nodes to match against")
    targets = anonymized.pseudonyms()
    if sample_size is not None:
        targets = sample_distinct(targets, sample_size, seed)

    hits = 0
    evaluated = 0
    for anon_node in targets:
        truth = anonymized.true_identity[anon_node]
        if truth not in training_graph:
            # The true node may have been split away from the training part;
            # skip it, as it cannot possibly be recovered.
            continue
        top = deanonymize_node(anon_node, candidates, distance, top_l)
        evaluated += 1
        if any(candidate == truth for candidate, _ in top):
            hits += 1
    precision = hits / evaluated if evaluated else 0.0
    return DeanonymizationReport(
        precision=precision,
        evaluated=evaluated,
        hits=hits,
        top_l=top_l,
        scheme=anonymized.scheme,
    )
