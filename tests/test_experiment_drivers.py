"""Smoke tests for the per-figure experiment drivers (tiny parameters).

These are integration tests: every driver runs end-to-end on very small
synthetic workloads and must return a well-formed table whose series show
the qualitative shape the paper reports (where that shape is deterministic
enough to assert at this scale).
"""


from repro.experiments.ablations import (
    ablation_bound_tiers,
    ablation_bounds,
    ablation_matching_backend,
    ablation_monotonicity,
)
from repro.experiments.fig5_ted_ted_ged import figure5_ted_ted_ged
from repro.experiments.fig6_ted_agreement import figure6_ted_agreement
from repro.experiments.fig7_scalability import figure7a_ted_star_vs_tree_size, figure7b_ned_vs_k
from repro.experiments.fig8_parameter_k import figure8_parameter_k
from repro.experiments.fig9_query_comparison import (
    figure9a_similarity_computation_time,
    figure9b_nearest_neighbor_query_time,
    figure9b_tier_ablation,
)
from repro.experiments.fig10_deanonymization import deanonymization_experiment, figure10a_pgp
from repro.experiments.fig11_deanonymization_sweeps import (
    figure11a_precision_vs_permutation_ratio,
    figure11b_precision_vs_top_l,
)
from repro.experiments.reporting import ExperimentTable
from repro.experiments.table2_datasets import table2_dataset_summary


class TestTable2:
    def test_six_rows(self):
        table = table2_dataset_summary(scale=0.2)
        assert isinstance(table, ExperimentTable)
        assert len(table.rows) == 6

    def test_generated_sizes_positive(self):
        table = table2_dataset_summary(scale=0.2)
        assert all(row["generated_nodes"] > 0 for row in table.rows)


class TestFigure5and6:
    def test_figure5_tables(self):
        result = figure5_ted_ted_ged(ks=(2, 3), pairs_per_k=4, scale=0.3, max_tree_size=10)
        assert set(result) == {"figure5a_time", "figure5b_values"}
        time_table = result["figure5a_time"]
        assert len(time_table.rows) == 2
        # TED* must have produced a value for every k that had pairs.
        for row in time_table.rows:
            if row["pairs"]:
                assert row["ted_star_time"] > 0

    def test_figure6_tables(self):
        result = figure6_ted_agreement(ks=(2, 3), pairs_per_k=5, scale=0.3)
        error_rows = result["figure6a_relative_error"].rows
        ratio_rows = result["figure6b_equivalency"].rows
        assert len(error_rows) == len(ratio_rows) == 2
        for row in ratio_rows:
            if row["equivalency_ratio"] is not None:
                assert 0.0 <= row["equivalency_ratio"] <= 1.0


class TestFigure7:
    def test_figure7a_buckets(self):
        table = figure7a_ted_star_vs_tree_size(pair_count=10, scale=0.3,
                                               size_buckets=((1, 30), (31, 200)))
        assert len(table.rows) == 2

    def test_figure7b_time_grows_with_k(self):
        table = figure7b_ned_vs_k(ks=(1, 3, 5), pair_count=6, scale=0.3)
        times = [row["avg_time_seconds"] for row in table.rows]
        assert times[0] < times[-1]

    def test_figure7b_distance_monotone_in_k(self):
        table = figure7b_ned_vs_k(ks=(1, 2, 3, 4), pair_count=6, scale=0.3)
        distances = [row["avg_distance"] for row in table.rows]
        assert distances == sorted(distances)


class TestFigure8:
    def test_nn_set_size_decreases_with_k(self):
        result = figure8_parameter_k(ks=(1, 3), query_count=3, candidate_count=15, scale=0.3)
        sizes = [row["avg_nn_set_size"] for row in result["figure8a_nn_set_size"].rows]
        assert sizes[0] >= sizes[-1]

    def test_ties_decrease_with_k(self):
        result = figure8_parameter_k(ks=(1, 4), query_count=3, candidate_count=15, scale=0.3)
        ties = [row["avg_ties_in_top_l"] for row in result["figure8b_ranking_ties"].rows]
        assert ties[0] >= ties[-1]


class TestFigure9:
    def test_hits_is_slowest(self):
        table = figure9a_similarity_computation_time(
            datasets=("PGP",), pair_count=3, scale=0.15
        )
        row = table.rows[0]
        assert row["hits_time"] > row["ned_time"]
        assert row["hits_time"] > row["feature_time"]

    def test_vptree_prunes_relative_to_scan(self):
        table = figure9b_nearest_neighbor_query_time(
            datasets=("PGP",), candidate_count=40, query_count=3, scale=0.25
        )
        row = table.rows[0]
        assert row["ned_vptree_distance_evaluations"] <= row["feature_distance_evaluations"]
        assert row["ned_vptree_query_time"] <= row["ned_scan_query_time"] * 1.5

    def test_tier_ablation_hybrid_beats_both_baselines(self):
        """Acceptance: on the Fig 9b workload, the hybrid bound+triangle
        VP-tree pays strictly fewer exact TED* evaluations than both the
        triangle-only VP-tree and the PR-1 level-size bound-prune scan
        (the driver itself asserts all regimes return identical results)."""
        table = figure9b_tier_ablation(candidate_count=80, query_count=4, scale=0.3)
        rows = {row["configuration"]: row for row in table.rows}
        hybrid = rows["hybrid vptree"]["exact_evals_per_query"]
        assert hybrid < rows["vptree triangle-only"]["exact_evals_per_query"]
        assert hybrid < rows["scan level-size"]["exact_evals_per_query"]
        # The per-tier counters must show where evaluations were skipped.
        assert (
            rows["hybrid vptree"]["pruned_level_size"]
            + rows["hybrid vptree"]["pruned_degree"]
            + rows["hybrid vptree"]["signature_hits"]
            + rows["hybrid vptree"]["decided_level_size"]
            + rows["hybrid vptree"]["decided_degree"]
        ) > 0
        # The degree tier tightens the scan beyond level-size alone.
        assert (
            rows["scan degree-multiset"]["exact_evals_per_query"]
            <= rows["scan level-size"]["exact_evals_per_query"]
        )


class TestFigure10and11:
    def test_deanonymization_experiment_rows(self):
        table = deanonymization_experiment(
            dataset="PGP", top_l=5, ratio=0.1, scale=0.2,
            query_sample=5, candidate_sample=30, seed=1,
        )
        assert len(table.rows) == 6  # 3 schemes x 2 methods
        for row in table.rows:
            assert 0.0 <= row["precision"] <= 1.0

    def test_naive_scheme_ned_precision_is_high(self):
        table = figure10a_pgp(query_sample=5, candidate_sample=30, scale=0.2,
                              schemes=("naive",))
        ned_rows = [row for row in table.rows if row["method"] == "NED"]
        assert ned_rows[0]["precision"] >= 0.8

    def test_figure11a_rows(self):
        table = figure11a_precision_vs_permutation_ratio(
            ratios=(0.05, 0.2), query_sample=4, candidate_sample=25, scale=0.2
        )
        assert len(table.rows) == 4  # 2 ratios x 2 methods

    def test_figure11b_rows(self):
        table = figure11b_precision_vs_top_l(
            top_ls=(1, 5), query_sample=4, candidate_sample=25, scale=0.2
        )
        assert len(table.rows) == 4


class TestAblations:
    def test_bound_tiers_dominate_and_sandwich(self):
        table = ablation_bound_tiers(pair_count=20, scale=0.3)
        row = table.rows[0]
        assert row["dominance_violations"] == 0
        assert row["sandwich_violations"] == 0
        assert row["avg_degree_lower"] >= row["avg_level_size_lower"]
        assert row["degree_exact_evals"] <= row["level_size_exact_evals"]

    def test_deanonymization_engine_tiers_match_full_cascade(self):
        level_size = deanonymization_experiment(
            dataset="PGP", top_l=5, ratio=0.1, scale=0.2, query_sample=4,
            candidate_sample=25, seed=3, schemes=("perturbation",),
            engine_mode="bound-prune", engine_tiers=("signature", "level-size"),
        )
        full = deanonymization_experiment(
            dataset="PGP", top_l=5, ratio=0.1, scale=0.2, query_sample=4,
            candidate_sample=25, seed=3, schemes=("perturbation",),
            engine_mode="bound-prune",
        )
        ned = lambda table: next(r for r in table.rows if r["method"] == "NED")  # noqa: E731
        assert ned(level_size)["precision"] == ned(full)["precision"]
        assert ned(full)["exact_ted_star_evals"] <= ned(level_size)["exact_ted_star_evals"]

    def test_bounds_hold(self):
        table = ablation_bounds(pair_count=5, scale=0.3)
        row = table.rows[0]
        assert row["ged_bound_violations"] == 0
        assert row["ted_bound_violations"] == 0

    def test_monotonicity_holds(self):
        table = ablation_monotonicity(pair_count=5, ks=(1, 2, 3), scale=0.3)
        assert all(row["monotonicity_violations"] == 0 for row in table.rows)

    def test_matching_backends_agree(self):
        table = ablation_matching_backend(sizes=(8, 16), trials=3)
        assert all(row["cost_mismatches"] == 0 for row in table.rows)
