"""Tests for the TED*/TED/GED bound relations (Sections 11-12) and the
level-size TED* bounds driving the engine's pruning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.graph import Graph
from repro.ted.bounds import (
    degree_profile_sequence,
    ged_upper_bound_from_ted_star,
    level_size_sequence,
    ted_star_degree_lower_bound,
    ted_star_degree_multiset_bounds,
    ted_star_level_size_bounds,
    ted_star_lower_bound,
    ted_star_upper_bound,
    ted_upper_bound_from_weighted,
    tree_as_graph,
)
from repro.ted.exact_ged import exact_graph_edit_distance
from repro.ted.exact_ted import exact_tree_edit_distance
from repro.ted.ted_star import ted_star
from repro.trees.random_trees import random_tree, random_tree_with_depth
from repro.trees.tree import Tree


class TestTreeAsGraph:
    def test_sizes(self, three_level_tree):
        graph = tree_as_graph(three_level_tree)
        assert graph.number_of_nodes() == three_level_tree.size()
        assert graph.number_of_edges() == three_level_tree.size() - 1

    def test_single_node(self):
        graph = tree_as_graph(Tree.single_node())
        assert isinstance(graph, Graph)
        assert graph.number_of_nodes() == 1
        assert graph.number_of_edges() == 0


class TestGedBound:
    def test_bound_value_is_twice_ted_star(self, three_level_tree, simple_tree):
        assert ged_upper_bound_from_ted_star(three_level_tree, simple_tree) == (
            2.0 * ted_star(three_level_tree, simple_tree)
        )

    def test_ged_respects_bound_on_random_trees(self):
        for seed in range(20):
            a = random_tree(2 + seed % 6, seed=seed)
            b = random_tree(2 + (seed * 5) % 6, seed=seed + 31)
            ged = exact_graph_edit_distance(tree_as_graph(a), tree_as_graph(b))
            assert ged <= ged_upper_bound_from_ted_star(a, b) + 1e-9


class TestTedBound:
    def test_weighted_bound_respects_exact_ted_on_random_trees(self):
        for seed in range(20):
            a = random_tree(2 + seed % 6, seed=seed)
            b = random_tree(2 + (seed * 7) % 6, seed=seed + 71)
            exact = exact_tree_edit_distance(a, b)
            assert exact <= ted_upper_bound_from_weighted(a, b) + 1e-9

    def test_bound_is_zero_for_isomorphic_trees(self):
        tree = random_tree(8, seed=3)
        assert ted_upper_bound_from_weighted(tree, tree) == 0.0


class TestLevelSizeBounds:
    def test_level_size_sequence_pads_to_k(self, three_level_tree):
        assert level_size_sequence(three_level_tree) == (1, 2, 3)
        assert level_size_sequence(three_level_tree, k=5) == (1, 2, 3, 0, 0)
        with pytest.raises(ValueError):
            level_size_sequence(three_level_tree, k=2)

    def test_identical_sequences_give_zero_lower_bound(self):
        lower, upper = ted_star_level_size_bounds((1, 3, 5), (1, 3, 5))
        assert lower == 0
        assert upper == 3 + 5  # the root level contributes no move slack

    def test_unequal_lengths_are_zero_padded(self):
        lower, _ = ted_star_level_size_bounds((1, 2), (1, 2, 4))
        assert lower == 4

    @settings(max_examples=60, deadline=None)
    @given(
        size_a=st.integers(min_value=2, max_value=16),
        size_b=st.integers(min_value=2, max_value=16),
        depth=st.integers(min_value=1, max_value=4),
        seed_a=st.integers(min_value=0, max_value=10**6),
        seed_b=st.integers(min_value=0, max_value=10**6),
    )
    def test_bounds_sandwich_ted_star(self, size_a, size_b, depth, seed_a, seed_b):
        k = depth + 1
        first = random_tree_with_depth(size_a, depth, seed=seed_a)
        second = random_tree_with_depth(size_b, depth, seed=seed_b)
        distance = ted_star(first, second, k=k)
        assert ted_star_lower_bound(first, second, k) <= distance
        assert distance <= ted_star_upper_bound(first, second, k)

    def test_bounds_symmetric(self):
        first = random_tree_with_depth(9, 3, seed=1)
        second = random_tree_with_depth(12, 3, seed=2)
        assert ted_star_lower_bound(first, second) == ted_star_lower_bound(second, first)
        assert ted_star_upper_bound(first, second) == ted_star_upper_bound(second, first)


class TestDegreeProfileSequence:
    def test_profiles_of_simple_tree(self, three_level_tree):
        # three_level_tree: root with 2 children, 3 grandchildren total.
        profiles = degree_profile_sequence(three_level_tree)
        assert len(profiles) == 3
        assert profiles[0] == (2,)
        assert sum(profiles[1]) == 3  # degrees on level 2 sum to level-3 size
        assert profiles[2] == (0, 0, 0)  # deepest level has no in-view children
        assert all(tuple(sorted(level)) == level for level in profiles)

    def test_padding_to_k(self, three_level_tree):
        profiles = degree_profile_sequence(three_level_tree, k=5)
        assert len(profiles) == 5
        assert profiles[3] == () and profiles[4] == ()
        with pytest.raises(ValueError):
            degree_profile_sequence(three_level_tree, k=2)

    def test_truncation_zeroes_deepest_level(self):
        # A path 0-1-2: with its natural k the middle node has degree 1, but
        # a view truncated at the middle level must report degree 0 there to
        # agree with ted_star(..., k=2).
        path = Tree([-1, 0, 1])
        assert degree_profile_sequence(path)[1] == (1,)


class TestDegreeMultisetBounds:
    def test_dominates_level_size_on_fixture(self):
        # Same level sizes (1, 2), different branching: the star's two leaves
        # hang off one child, the path's off both.  Level sizes see no
        # difference; the degree multisets do.
        lopsided = Tree.from_levels([[2], [2, 0]])
        balanced = Tree.from_levels([[2], [1, 1]])
        sizes = level_size_sequence(lopsided)
        assert level_size_sequence(balanced) == sizes
        size_lower, _ = ted_star_level_size_bounds(sizes, sizes)
        assert size_lower == 0
        degree_lower = ted_star_degree_lower_bound(lopsided, balanced)
        assert degree_lower == 1
        assert degree_lower <= ted_star(lopsided, balanced)

    @settings(max_examples=60, deadline=None)
    @given(
        size_a=st.integers(min_value=2, max_value=16),
        size_b=st.integers(min_value=2, max_value=16),
        depth=st.integers(min_value=1, max_value=4),
        seed_a=st.integers(min_value=0, max_value=10**6),
        seed_b=st.integers(min_value=0, max_value=10**6),
    )
    def test_sandwiches_ted_star_and_dominates_level_size(
        self, size_a, size_b, depth, seed_a, seed_b
    ):
        k = depth + 1
        first = random_tree_with_depth(size_a, depth, seed=seed_a)
        second = random_tree_with_depth(size_b, depth, seed=seed_b)
        distance = ted_star(first, second, k=k)
        degree_lower, degree_upper = ted_star_degree_multiset_bounds(
            degree_profile_sequence(first, k), degree_profile_sequence(second, k)
        )
        # Sandwich: never above the exact distance, upper never below it.
        assert degree_lower <= distance <= degree_upper
        # Dominance: at least as tight as the level-size lower bound.
        assert degree_lower >= ted_star_lower_bound(first, second, k)

    def test_bounds_symmetric(self):
        first = random_tree_with_depth(9, 3, seed=5)
        second = random_tree_with_depth(12, 3, seed=6)
        forward = ted_star_degree_multiset_bounds(
            degree_profile_sequence(first), degree_profile_sequence(second, 4)
        )
        backward = ted_star_degree_multiset_bounds(
            degree_profile_sequence(second, 4), degree_profile_sequence(first)
        )
        assert forward == backward

    def test_zero_for_isomorphic_trees(self):
        from repro.trees.random_trees import random_tree

        tree = random_tree(9, seed=8)
        lower, _ = ted_star_degree_multiset_bounds(
            degree_profile_sequence(tree), degree_profile_sequence(tree)
        )
        assert lower == 0
