"""Weighted TED* (Section 12 of the paper).

The unit-cost TED* treats every edit operation equally.  The weighted variant
``δ_T(W)`` assigns per-level weights ``w¹_i`` to insert/delete-leaf operations
and ``w²_i`` to same-level moves:

    δ_T(W) = Σ_i ( w¹_i · P_i  +  w²_i · M_i )

As long as every weight is strictly positive, δ_T(W) remains a metric
(Lemma 6).  The particular choice ``w¹_i = 1`` and ``w²_i = 4·i`` yields
``δ_T(W+)``, which upper-bounds the exact unordered tree edit distance
(Lemma 7) — each level-``i`` move can be simulated by at most ``4·i``
insert/delete operations in classic TED.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

from repro.exceptions import DistanceError
from repro.ted.ted_star import TedStarResult, ted_star_detailed
from repro.trees.tree import Tree

WeightSpec = Union[float, Sequence[float], Callable[[int], float]]


def weighted_ted_star(
    first: Tree,
    second: Tree,
    insert_delete_weight: WeightSpec = 1.0,
    move_weight: WeightSpec = 1.0,
    k: Optional[int] = None,
    backend: str = "auto",
) -> float:
    """Return the weighted TED* distance δ_T(W).

    ``insert_delete_weight`` and ``move_weight`` may each be a constant, a
    sequence indexed by paper-style level (index 0 unused), or a callable
    mapping the level number to a weight.  All weights must be positive for
    the result to remain a metric.
    """
    result = ted_star_detailed(first, second, k=k, backend=backend)
    return level_weighted_ted_star(result, insert_delete_weight, move_weight)


def level_weighted_ted_star(
    result: TedStarResult,
    insert_delete_weight: WeightSpec,
    move_weight: WeightSpec,
) -> float:
    """Apply per-level weights to an already computed :class:`TedStarResult`."""
    w1 = _as_weight_fn(insert_delete_weight, result.k, "insert_delete_weight")
    w2 = _as_weight_fn(move_weight, result.k, "move_weight")
    return result.reweighted(w1, w2)


def ted_star_upper_bound_weights(
    first: Tree,
    second: Tree,
    k: Optional[int] = None,
    backend: str = "auto",
) -> float:
    """Return δ_T(W+) — the weighted TED* that upper-bounds exact TED.

    Uses ``w¹_i = 1`` and ``w²_i = 4·i`` (Definition 8 of the paper).  The
    level index follows the paper's convention (the root is level 1), so a
    move at level ``i`` costs ``4·i``.
    """
    return weighted_ted_star(
        first,
        second,
        insert_delete_weight=1.0,
        move_weight=lambda level: 4.0 * level,
        k=k,
        backend=backend,
    )


def _as_weight_fn(spec: WeightSpec, k: int, name: str) -> Callable[[int], float]:
    """Normalise a weight specification into a ``level -> weight`` callable."""
    if callable(spec):
        fn = spec
    elif isinstance(spec, (int, float)) and not isinstance(spec, bool):
        constant = float(spec)

        def fn(_level: int, _c: float = constant) -> float:
            return _c

    elif isinstance(spec, Sequence):
        values = list(spec)
        if len(values) < k + 1:
            raise DistanceError(
                f"{name} sequence must have at least k+1={k + 1} entries (index 0 unused)"
            )

        def fn(level: int, _values=values) -> float:
            return float(_values[level])

    else:
        raise DistanceError(f"{name} must be a number, sequence or callable")

    def validated(level: int) -> float:
        weight = float(fn(level))
        if weight <= 0:
            raise DistanceError(f"{name} must be positive at every level; level {level} gave {weight}")
        return weight

    return validated
