"""Human-readable rendering of traces and metrics snapshots.

Both renderers are dependency-free (plain column formatting, no
:mod:`repro.experiments` import, so :mod:`repro.obs` stays a leaf package)
and consume the plain-dict exports — :meth:`Tracer.summary` /
:meth:`MetricsRegistry.snapshot` — so they also work on snapshots that
crossed a process boundary or were read back from JSON.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def _format_seconds(value: Optional[float]) -> str:
    """Render a duration at a human scale (µs/ms/s)."""
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.3f}ms"
    return f"{value * 1e6:.1f}µs"


def _format_cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _render_columns(title: str, header: Sequence[str], rows: List[Sequence[str]]) -> str:
    widths = [
        max(len(str(header[i])), *(len(str(row[i])) for row in rows)) if rows else len(str(header[i]))
        for i in range(len(header))
    ]
    lines = [title]
    lines.append("  ".join(str(cell).ljust(width) for cell, width in zip(header, widths)).rstrip())
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(width) for cell, width in zip(row, widths)).rstrip())
    return "\n".join(lines)


def render_trace_summary(tracer_or_summary) -> str:
    """Render per-span-name aggregates as an aligned text table.

    Accepts a :class:`repro.obs.tracing.Tracer` or the plain dict its
    ``summary()`` returns.  Rows are sorted by total time descending — the
    reading order of "where did the time go".
    """
    summary: Dict[str, Dict[str, float]]
    summary = tracer_or_summary.summary() if hasattr(tracer_or_summary, "summary") else tracer_or_summary
    if not summary:
        return "trace summary: no spans recorded"
    rows = [
        [
            name,
            int(entry["count"]),
            _format_seconds(entry["total"]),
            _format_seconds(entry["mean"]),
            _format_seconds(entry["min"]),
            _format_seconds(entry["max"]),
        ]
        for name, entry in sorted(
            summary.items(), key=lambda item: item[1]["total"], reverse=True
        )
    ]
    return _render_columns(
        "trace summary (by total time)",
        ["span", "count", "total", "mean", "min", "max"],
        rows,
    )


def render_metrics_summary(snapshot: Dict[str, object]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as text sections.

    Histograms print count/mean/p50/p95/p99/max at a human scale; counters
    and gauges print name/value pairs.  Extra top-level sections a session
    snapshot adds (``resolution``, ``shards``, ...) render as flat
    name/value tables.
    """
    parts: List[str] = []
    histograms = snapshot.get("histograms") or {}
    if histograms:
        rows = [
            [
                name,
                int(entry["count"]),
                _format_seconds(entry.get("mean")),
                _format_seconds(entry.get("p50")),
                _format_seconds(entry.get("p95")),
                _format_seconds(entry.get("p99")),
                _format_seconds(entry.get("max")),
            ]
            for name, entry in sorted(histograms.items())
        ]
        parts.append(_render_columns(
            "latency histograms",
            ["histogram", "count", "mean", "p50", "p95", "p99", "max"],
            rows,
        ))
    for section in ("counters", "gauges"):
        values = snapshot.get(section) or {}
        if values:
            rows = [[name, _format_cell(value)] for name, value in sorted(values.items())]
            parts.append(_render_columns(section, ["name", "value"], rows))
    known = {"histograms", "counters", "gauges"}
    for section, values in sorted(snapshot.items()):
        if section in known or not isinstance(values, dict) or not values:
            continue
        rows = [[name, _format_cell(value)] for name, value in sorted(values.items())]
        parts.append(_render_columns(section, ["name", "value"], rows))
    return "\n\n".join(parts) if parts else "metrics: nothing recorded"
