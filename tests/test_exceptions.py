"""Tests for the exception hierarchy."""

import pytest

from repro.exceptions import (
    DatasetError,
    DistanceError,
    EdgeNotFoundError,
    ExperimentError,
    GraphError,
    IndexingError,
    MatchingError,
    NodeNotFoundError,
    ReproError,
    TreeError,
)


def test_all_exceptions_derive_from_repro_error():
    for exc_type in (
        GraphError,
        NodeNotFoundError,
        EdgeNotFoundError,
        TreeError,
        MatchingError,
        DistanceError,
        IndexingError,
        DatasetError,
        ExperimentError,
    ):
        assert issubclass(exc_type, ReproError)


def test_node_not_found_is_key_error():
    assert issubclass(NodeNotFoundError, KeyError)


def test_node_not_found_carries_node():
    error = NodeNotFoundError(42)
    assert error.node == 42
    assert "42" in str(error)


def test_edge_not_found_carries_endpoints():
    error = EdgeNotFoundError(1, 2)
    assert (error.u, error.v) == (1, 2)


def test_repro_error_catchable():
    with pytest.raises(ReproError):
        raise GraphError("boom")
