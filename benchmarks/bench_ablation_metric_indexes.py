"""Ablation — metric indexes for NED retrieval: VP-tree vs BK-tree vs scan.

The paper uses a VP-tree (Figure 9b).  Because TED* is integer-valued, a
BK-tree is also applicable; this ablation compares the number of distance
evaluations each index needs for the same exact kNN queries.
"""

from _bench_utils import emit_table

from repro.datasets.registry import load_dataset_pair
from repro.experiments.reporting import ExperimentTable
from repro.index.bktree import BKTree
from repro.index.linear_scan import LinearScanIndex
from repro.index.vptree import VPTree
from repro.ted.ted_star import ted_star
from repro.trees.adjacent import k_adjacent_tree

K = 3
CANDIDATES = 60
QUERIES = 4
NEIGHBORS = 5


def test_ablation_metric_indexes(benchmark):
    """All indexes return identical results; both trees prune versus the scan."""
    graph_q, graph_c = load_dataset_pair("PGP", "PGP", scale=0.25, seed=9)
    candidates = graph_c.nodes()[:CANDIDATES]
    trees = [k_adjacent_tree(graph_c, node, K) for node in candidates]
    metric = lambda a, b: ted_star(a, b, k=K)  # noqa: E731

    vptree = VPTree(trees, metric, leaf_size=8, seed=0)
    bktree = BKTree(trees, metric)
    scan = LinearScanIndex(trees, metric)
    queries = [k_adjacent_tree(graph_q, node, K) for node in graph_q.nodes()[:QUERIES]]

    def run_queries():
        totals = {"vptree": 0, "bktree": 0, "scan": 0}
        for query in queries:
            vp = vptree.knn(query, NEIGHBORS)
            bk = bktree.knn(query, NEIGHBORS)
            exact = scan.knn(query, NEIGHBORS)
            assert [d for _, d in vp] == [d for _, d in exact]
            assert [d for _, d in bk] == [d for _, d in exact]
            totals["vptree"] += vptree.last_query_distance_calls
            totals["bktree"] += bktree.last_query_distance_calls
            totals["scan"] += scan.last_query_distance_calls
        return totals

    totals = benchmark.pedantic(run_queries, rounds=1, iterations=1)

    table = ExperimentTable(
        title="Ablation: distance evaluations per index for identical NED kNN queries",
        columns=["index", "total_distance_evaluations", "per_query"],
        notes=[f"candidates={CANDIDATES}, queries={QUERIES}, k={K}"],
    )
    for name, total in totals.items():
        table.add_row(index=name, total_distance_evaluations=total,
                      per_query=total / QUERIES)
    emit_table(table)
    assert totals["vptree"] <= totals["scan"]
    assert totals["bktree"] <= totals["scan"]
