"""The optimised TED* kernel is value-identical to the pre-change reference.

PR 3 rewrote the kernel's hot path: cost-matrix entries are memoized per
distinct label pair, the multiset symmetric difference is a sorted-merge
walk, the matching backend is auto-selected, and inputs are canonicalized
(AHU form) so the distance depends only on the isomorphism classes.  These
property tests pin down each claim:

* fed the same canonical inputs, the new kernel and the preserved pre-change
  level loop (``tests/_reference_ted_star.py``) return **bitwise-equal**
  distances, per backend;
* ``backend="auto"`` dispatches to exactly the solver
  :func:`repro.matching.bipartite.resolve_backend` names;
* canonicalization makes the distance relabel-invariant — the property the
  signature-keyed cache tier relies on.
"""

import pytest
from hypothesis import given, settings, strategies as st

from _reference_ted_star import reference_ted_star
from repro.matching.bipartite import resolve_backend
from repro.matching.scipy_backend import scipy_available
from repro.exceptions import MatchingError
from repro.ted.ted_star import ted_star
from repro.trees.canonize import canonical_form, trees_isomorphic
from repro.trees.tree import Tree
from repro.utils.rng import ensure_rng

BACKENDS = ["hungarian"] + (["scipy"] if scipy_available() else [])


@st.composite
def bounded_trees(draw, max_nodes=16, max_depth=4):
    """Generate a random tree with bounded size and depth."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = ensure_rng(seed)
    parents = [-1]
    depths = [0]
    for node in range(1, n):
        eligible = [i for i in range(node) if depths[i] < max_depth]
        parent = rng.choice(eligible) if eligible else 0
        parents.append(parent)
        depths.append(depths[parent] + 1)
    return Tree(parents)


def normalised_canonical_pair(first: Tree, second: Tree):
    """Replicate the kernel's input normalization: canonical forms, ordered."""
    first_canonical, signature_first = canonical_form(first)
    second_canonical, signature_second = canonical_form(second)
    key_first = (first.size(), first.height(), signature_first)
    key_second = (second.size(), second.height(), signature_second)
    if key_second < key_first:
        return second_canonical, first_canonical
    return first_canonical, second_canonical


class TestBitwiseEqualityWithReference:
    @settings(max_examples=60, deadline=None)
    @given(bounded_trees(), bounded_trees())
    def test_matches_reference_on_canonical_inputs(self, first, second):
        left, right = normalised_canonical_pair(first, second)
        for backend in BACKENDS:
            assert ted_star(first, second, backend=backend) == reference_ted_star(
                left, right, backend=backend
            )

    @settings(max_examples=30, deadline=None)
    @given(bounded_trees(), bounded_trees(), st.integers(min_value=1, max_value=6))
    def test_matches_reference_with_explicit_k(self, first, second, k):
        left, right = normalised_canonical_pair(first, second)
        for backend in BACKENDS:
            assert ted_star(first, second, k=k, backend=backend) == reference_ted_star(
                left, right, k=k, backend=backend
            )


class TestAutoBackend:
    def test_auto_resolves_deterministically(self):
        resolved = resolve_backend("auto")
        assert resolved == ("scipy" if scipy_available() else "hungarian")
        assert resolve_backend("auto") == resolved

    def test_concrete_backends_pass_through(self):
        assert resolve_backend("hungarian") == "hungarian"
        assert resolve_backend("scipy") == "scipy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(MatchingError):
            resolve_backend("quantum")

    @settings(max_examples=25, deadline=None)
    @given(bounded_trees(), bounded_trees())
    def test_auto_equals_resolved_backend(self, first, second):
        resolved = resolve_backend("auto")
        assert ted_star(first, second, backend="auto") == ted_star(
            first, second, backend=resolved
        )


class TestCanonicalInvariance:
    """Canonicalization makes TED* a function of the isomorphism classes."""

    @settings(max_examples=40, deadline=None)
    @given(bounded_trees(), bounded_trees(), st.integers(min_value=0, max_value=2**31 - 1))
    def test_relabeling_both_operands_preserves_distance(self, first, second, seed):
        rng = ensure_rng(seed)
        relabeled_first = _relabel(first, rng)
        relabeled_second = _relabel(second, rng)
        assert trees_isomorphic(first, relabeled_first)
        assert ted_star(first, second) == ted_star(relabeled_first, relabeled_second)

    @settings(max_examples=40, deadline=None)
    @given(bounded_trees(), bounded_trees())
    def test_canonical_inputs_are_a_fixed_point(self, first, second):
        left, right = normalised_canonical_pair(first, second)
        assert ted_star(first, second) == ted_star(left, right)


def _relabel(tree: Tree, rng) -> Tree:
    nodes = list(tree.nodes())
    non_root = nodes[1:]
    rng.shuffle(non_root)
    order = [0] + non_root
    new_id = {old: new for new, old in enumerate(order)}
    parents = [0] * tree.size()
    for old in nodes:
        parent = tree.parent(old)
        parents[new_id[old]] = -1 if parent == -1 else new_id[parent]
    return Tree(parents)
