"""Figure 6a — relative error |TED - TED*| / TED (mean and std)."""

from _bench_utils import emit_table

from repro.experiments.fig6_ted_agreement import figure6_ted_agreement


def test_figure6a_relative_error(benchmark):
    """Mean relative error should stay small (paper: 0.04-0.14)."""
    table = benchmark.pedantic(
        lambda: figure6_ted_agreement(ks=(2, 3), pairs_per_k=15, scale=0.4)[
            "figure6a_relative_error"
        ],
        rounds=1,
        iterations=1,
    )
    emit_table(table)
    for row in table.rows:
        if row["mean_relative_error"] is not None:
            assert row["mean_relative_error"] <= 0.5
