"""Ablation — monotonicity of NED in the parameter k (Lemma 5)."""

from _bench_utils import emit_table

from repro.experiments.ablations import ablation_monotonicity


def test_ablation_monotonicity(benchmark):
    """NED never decreases when k grows, on every sampled node pair."""
    table = benchmark.pedantic(
        lambda: ablation_monotonicity(pair_count=15, ks=(1, 2, 3, 4, 5), scale=0.4),
        rounds=1,
        iterations=1,
    )
    emit_table(table)
    assert all(row["monotonicity_violations"] == 0 for row in table.rows)
    averages = [row["avg_distance"] for row in table.rows]
    assert averages == sorted(averages)
