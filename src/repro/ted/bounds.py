"""Relations among TED*, exact TED and exact GED (Sections 11-12) and cheap
level-size bounds on TED* itself.

Two inequalities from the paper are exposed here both as documented helper
functions and as checkable predicates used by the ablation benchmarks and the
property tests:

* ``GED(t1, t2) ≤ 2 · TED*(t1, t2)`` — every TED* edit operation maps to
  exactly two GED edit operations on the tree seen as a graph (Equation 18).
* ``TED(t1, t2) ≤ δ_T(W+)(t1, t2)`` — the weighted TED* with ``w²_i = 4·i``
  dominates exact TED (Lemma 7).

A third family of bounds sandwiches TED* between two quantities computable
from the per-level sizes alone, in O(k) instead of O(k·n³):

* ``Σ_i |a_i − b_i| ≤ TED*`` — moves never change level sizes, so at least
  that many leaf insertions/deletions are unavoidable (it is exactly the
  padding cost ``Σ P_i``, and every ``M_i ≥ 0``).
* ``TED* ≤ Σ_i |a_i − b_i| + Σ_{i≥2} min(a_i, b_i)`` — a constructive edit
  script realises it: insert the missing nodes top-down directly under their
  final parents, move each surviving node at most once to its final parent,
  then delete the surplus nodes bottom-up (the roots always coincide, so
  level 1 contributes no move).  The same bound also holds for Algorithm 1's
  output directly: each level's bipartite matching cost is at most the total
  number of children on both sides, so ``M_i ≤ min(a_{i+1}, b_{i+1})``.

These are the bounds :mod:`repro.engine` evaluates before paying for an exact
TED*, skipping the cubic computation whenever the bound already decides a
query (candidate pruning in kNN/range search, forced values in distance
matrices).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.graph.graph import Graph
from repro.ted.ted_star import ted_star
from repro.ted.weighted import ted_star_upper_bound_weights
from repro.trees.tree import Tree


def ged_upper_bound_from_ted_star(first: Tree, second: Tree, k=None) -> float:
    """Return ``2 · TED*``, an upper bound on the GED of the two trees."""
    return 2.0 * ted_star(first, second, k=k)


def ted_upper_bound_from_weighted(first: Tree, second: Tree, k=None) -> float:
    """Return ``δ_T(W+)``, an upper bound on the exact TED of the two trees."""
    return ted_star_upper_bound_weights(first, second, k=k)


def level_size_sequence(tree: Tree, k: Optional[int] = None) -> Tuple[int, ...]:
    """Return the sizes of the paper-style levels ``1..k`` of ``tree``.

    Level 1 is the root level.  When ``k`` exceeds the tree's height the
    sequence is zero-padded, so sequences of trees extracted with the same
    ``k`` are always directly comparable.
    """
    sizes = [len(level) for level in tree.levels()]
    if k is None:
        return tuple(sizes)
    if k < len(sizes):
        raise ValueError(f"k={k} is smaller than the tree's {len(sizes)} levels")
    return tuple(sizes) + (0,) * (k - len(sizes))


def ted_star_level_size_bounds(
    sizes_first: Sequence[int], sizes_second: Sequence[int]
) -> Tuple[int, int]:
    """Return ``(lower, upper)`` bounds on TED* from per-level sizes alone.

    ``lower = Σ_i |a_i − b_i|`` and ``upper = lower + Σ_{i≥2} min(a_i, b_i)``
    (see the module docstring for why both hold).  Costs O(k) — no tree
    traversal, no matching — which is what makes bound-based pruning pay off
    when each exact TED* is O(k·n³).
    """
    width = max(len(sizes_first), len(sizes_second))
    lower = 0
    slack = 0
    for i in range(width):
        a = sizes_first[i] if i < len(sizes_first) else 0
        b = sizes_second[i] if i < len(sizes_second) else 0
        lower += abs(a - b)
        if i >= 1:  # the roots always coincide: level 1 contributes no move
            slack += min(a, b)
    return lower, lower + slack


def ted_star_lower_bound(first: Tree, second: Tree, k: Optional[int] = None) -> int:
    """Return the level-size lower bound on ``TED*(first, second)``."""
    lower, _ = ted_star_level_size_bounds(
        level_size_sequence(first, k), level_size_sequence(second, k)
    )
    return lower


def ted_star_upper_bound(first: Tree, second: Tree, k: Optional[int] = None) -> int:
    """Return the level-size upper bound on ``TED*(first, second)``."""
    _, upper = ted_star_level_size_bounds(
        level_size_sequence(first, k), level_size_sequence(second, k)
    )
    return upper


def tree_as_graph(tree: Tree) -> Graph:
    """Convert a rooted tree into an undirected graph (for GED baselines)."""
    graph = Graph()
    graph.add_nodes_from(tree.nodes())
    for parent, child in tree.edges():
        graph.add_edge(parent, child)
    return graph
