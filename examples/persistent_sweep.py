#!/usr/bin/env python
"""Persistent NED sweeps as session lifecycles (paper §6-7).

The paper's design splits the work into *precompute once* (extract every
node's k-adjacent tree and its O(k) summaries) and *query many* (answer NED
similarity queries from the summaries, paying for exact TED* only when
forced).  With :class:`repro.engine.NedSession` that split is a lifecycle —
**open → warm → batch queries → close** — and it extends across process
boundaries with two durable artifacts:

1. **Store shards** — ``save_sharded(store, directory, shards=N)`` writes
   the extraction as a manifest plus N shard files;
   ``ShardedTreeStore.load(directory)`` attaches them lazily, keeping at
   most ``max_resident`` shards decoded in memory at a time.
2. **Cache sidecar** — every exact TED* distance a session pays for is
   keyed by the pair of AHU canonical signatures (TED* is a pure function
   of the two isomorphism classes).  Opening a session with ``cache_file=``
   warms it from the sidecar when one exists; closing the session (the
   context manager does) writes the sidecar back — including per-entry hit
   counts, so a later overflowing load keeps the *hottest* entries.

A *cold* session pays for extraction and every needed exact TED*.  A *warm*
session — here simulated by a fresh session re-attaching the same files —
runs the identical workload with **zero** exact TED* evaluations: the
shards answer "what are the trees and summaries", the sidecar answers
"what were the exact distances".  Queries are submitted as one batch of
:class:`~repro.engine.KnnPlan`\\ s, so equal-signature probes are answered
once and fanned out.

Run with::

    python examples/persistent_sweep.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.engine import (
    KnnPlan,
    NedSession,
    ShardedTreeStore,
    TreeStore,
    save_sharded,
)
from repro.graph.generators import barabasi_albert_graph
from repro.utils.timer import Timer

K = 3
NODES = 60
SHARDS = 5
NEIGHBORS = 5
QUERIES = 10


def run_sweep(store, graph, cache_file: Path):
    """One sweep process: open session -> warm -> batch queries -> close."""
    with NedSession(store, cache_file=cache_file) as session:  # open (+ warm)
        matrix = session.pairwise_matrix(mode="bound-prune")
        plans = [
            KnnPlan(session.probe(graph, node), NEIGHBORS)
            for node in graph.nodes()[:QUERIES]
        ]
        answers = session.execute_batch(plans)  # batched queries
        exact = session.stats.exact_evaluations
        hits = session.stats.cache_hits
    # close: the sidecar now holds everything this sweep resolved.
    return matrix, answers, exact, hits


def main() -> None:
    print("== Persistent sweep: save -> reload -> warm re-run ==")
    graph = barabasi_albert_graph(NODES, 2, seed=7)

    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp) / "store"
        cache_file = Path(tmp) / "distances.ned"

        # ---- cold process: extract, shard, sweep, persist the cache.
        with Timer() as cold_timer:
            dense = TreeStore.from_graph(graph, K)
            save_sharded(dense, store_dir, shards=SHARDS)
            store = ShardedTreeStore.load(store_dir)
            cold_matrix, cold_answers, cold_exact, _ = run_sweep(
                store, graph, cache_file
            )
        cold_seconds = cold_timer.elapsed
        shard_files = sorted(p.name for p in store_dir.iterdir())
        print(f"cold: extracted {len(dense)} trees, sharded into {SHARDS} files "
              f"({', '.join(shard_files[:3])}, ...)")
        print(f"cold: {cold_exact} exact TED* evaluations, {cold_seconds:.2f}s; "
              f"sidecar written to {cache_file.name}")

        # ---- warm process: attach shards + sidecar, same sweep, no exact work.
        with Timer() as warm_timer:
            warm_store = ShardedTreeStore.load(store_dir, max_resident=2)
            warm_matrix, warm_answers, warm_exact, warm_hits = run_sweep(
                warm_store, graph, cache_file
            )
        warm_seconds = warm_timer.elapsed
        print(f"warm: {warm_exact} exact TED* evaluations "
              f"({warm_hits} sidecar hits), {warm_seconds:.2f}s; "
              f"at most {warm_store.max_resident} of "
              f"{warm_store.shard_count} shards resident")

        assert warm_matrix.values == cold_matrix.values, "matrices must be identical"
        assert warm_answers == cold_answers, "kNN answers must be identical"
        assert warm_exact == 0, "a warm session pays for no exact TED*"
        speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
        print(f"identical results, {speedup:.1f}x faster warm "
              "(see BENCH_kernel.json's 'persistence' section for the CI trail)")


if __name__ == "__main__":
    main()
