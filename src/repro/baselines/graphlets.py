"""Graphlet-based node features (small induced subgraph counts).

The paper's related work (§2) discusses graphlet-degree methods used for
biological networks: a node is described by how many small induced subgraphs
("graphlets") of each type it participates in.  This module counts the
standard 2- and 3-node graphlet orbits plus a few cheap 4-node patterns,
giving a feature vector comparable across graphs — another feature-style
baseline whose weakness (insensitivity beyond a very local radius) NED
addresses.

Orbits counted per node ``v``:

0. edges incident to ``v`` (degree),
1. paths of length 2 with ``v`` as an end point,
2. paths of length 2 with ``v`` as the centre,
3. triangles containing ``v``,
4. stars ``K_{1,3}`` centred at ``v``,
5. 4-node paths with ``v`` as an interior node (approximated from degree and
   path-2 counts of the neighbors).
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from repro.graph.graph import Graph

Node = Hashable

FEATURE_NAMES = (
    "degree",
    "path2_end",
    "path2_center",
    "triangles",
    "star3_center",
    "path3_interior",
)


def graphlet_features(graph: Graph, node: Node) -> List[float]:
    """Return the graphlet-orbit feature vector of ``node``."""
    neighbors = graph.neighbors(node)
    degree = len(neighbors)

    # Paths of length two with `node` at the centre: any unordered pair of
    # neighbors that is NOT connected (connected pairs form triangles).
    triangles = 0
    neighbor_list = sorted(neighbors, key=repr)
    for i in range(len(neighbor_list)):
        for j in range(i + 1, len(neighbor_list)):
            if graph.has_edge(neighbor_list[i], neighbor_list[j]):
                triangles += 1
    path2_center = degree * (degree - 1) // 2 - triangles

    # Paths of length two with `node` as an end point: edges from a neighbor
    # to a third node that is neither `node` nor another neighbor... the
    # classic orbit counts walks to non-adjacent third nodes.
    path2_end = 0
    for neighbor in neighbors:
        for second in graph.neighbors(neighbor):
            if second != node and second not in neighbors:
                path2_end += 1

    star3_center = degree * (degree - 1) * (degree - 2) // 6

    path3_interior = 0
    for neighbor in neighbors:
        other_degree = graph.degree(neighbor) - 1  # exclude the edge back to `node`
        path3_interior += other_degree * (degree - 1)

    return [
        float(degree),
        float(path2_end),
        float(path2_center),
        float(triangles),
        float(star3_center),
        float(path3_interior),
    ]


def graphlet_feature_table(graph: Graph) -> Dict[Node, List[float]]:
    """Return graphlet features for every node of ``graph``."""
    return {node: graphlet_features(graph, node) for node in graph.nodes()}
