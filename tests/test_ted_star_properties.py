"""Property-based tests (hypothesis) for TED* metric properties.

These verify, on randomly generated unordered trees, the four metric
properties the paper proves in Section 7 plus the structural invariants the
algorithm relies on (integrality, invariance to node relabeling, and the
relation to tree size).
"""

from hypothesis import given, settings, strategies as st

from repro.trees.canonize import trees_isomorphic
from repro.trees.tree import Tree
from repro.ted.ted_star import ted_star
from repro.utils.rng import ensure_rng


@st.composite
def bounded_trees(draw, max_nodes=10, max_depth=4):
    """Generate a random tree with bounded size and depth."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = ensure_rng(seed)
    parents = [-1]
    depths = [0]
    for node in range(1, n):
        eligible = [i for i in range(node) if depths[i] < max_depth]
        parent = rng.choice(eligible) if eligible else 0
        parents.append(parent)
        depths.append(depths[parent] + 1)
    return Tree(parents)


def relabel_tree(tree: Tree, seed: int) -> Tree:
    """Rebuild ``tree`` with a different node numbering (same structure)."""
    rng = ensure_rng(seed)
    nodes = list(tree.nodes())
    non_root = nodes[1:]
    rng.shuffle(non_root)
    order = [0] + non_root
    # order[i] is the old node placed at... we need new ids respecting that a
    # parent appears before its children is NOT required by Tree, so a plain
    # permutation that keeps the root at index 0 is enough.
    new_id = {old: new for new, old in enumerate(order)}
    parents = [0] * tree.size()
    for old in nodes:
        parent_old = tree.parent(old)
        parents[new_id[old]] = -1 if parent_old == -1 else new_id[parent_old]
    return Tree(parents)


@settings(max_examples=60, deadline=None)
@given(bounded_trees())
def test_self_distance_is_zero(tree):
    assert ted_star(tree, tree) == 0.0


@settings(max_examples=60, deadline=None)
@given(bounded_trees(), bounded_trees())
def test_non_negativity(first, second):
    assert ted_star(first, second) >= 0.0


@settings(max_examples=60, deadline=None)
@given(bounded_trees(), bounded_trees())
def test_symmetry(first, second):
    assert ted_star(first, second) == ted_star(second, first)


@settings(max_examples=60, deadline=None)
@given(bounded_trees(), bounded_trees())
def test_identity_of_indiscernibles(first, second):
    distance = ted_star(first, second)
    assert (distance == 0.0) == trees_isomorphic(first, second)


@settings(max_examples=40, deadline=None)
@given(bounded_trees(max_nodes=8), bounded_trees(max_nodes=8), bounded_trees(max_nodes=8))
def test_triangle_inequality(first, second, third):
    d_xz = ted_star(first, third)
    d_xy = ted_star(first, second)
    d_yz = ted_star(second, third)
    assert d_xz <= d_xy + d_yz + 1e-9


@settings(max_examples=60, deadline=None)
@given(bounded_trees(), bounded_trees())
def test_values_are_integers(first, second):
    distance = ted_star(first, second)
    assert abs(distance - round(distance)) < 1e-9


@settings(max_examples=60, deadline=None)
@given(bounded_trees(), bounded_trees())
def test_upper_bounded_by_total_size(first, second):
    # Deleting every non-root node of one tree and inserting every non-root
    # node of the other is always a valid edit script under TED* operations.
    distance = ted_star(first, second)
    assert distance <= (first.size() - 1) + (second.size() - 1)


@settings(max_examples=60, deadline=None)
@given(bounded_trees(), bounded_trees())
def test_lower_bounded_by_size_difference(first, second):
    # Only insert/delete-leaf operations change the node count, one at a time.
    distance = ted_star(first, second)
    assert distance >= abs(first.size() - second.size())


@settings(max_examples=50, deadline=None)
@given(bounded_trees(), st.integers(min_value=0, max_value=2**31 - 1))
def test_invariant_to_node_relabeling(tree, seed):
    relabeled = relabel_tree(tree, seed)
    assert ted_star(tree, relabeled) == 0.0


@settings(max_examples=50, deadline=None)
@given(bounded_trees(), bounded_trees(), st.integers(min_value=0, max_value=2**31 - 1))
def test_distance_invariant_under_relabeling_of_operands(first, second, seed):
    assert ted_star(first, second) == ted_star(relabel_tree(first, seed), second)


@settings(max_examples=40, deadline=None)
@given(bounded_trees(max_nodes=8), bounded_trees(max_nodes=8))
def test_monotone_in_k(first, second):
    # Lemma 5: the distance over the top x levels never exceeds the distance
    # over the top y >= x levels.
    max_k = max(first.height(), second.height()) + 1
    previous = 0.0
    for k in range(1, max_k + 1):
        current = ted_star(first, second, k=k)
        assert current >= previous - 1e-9
        previous = current
