#!/usr/bin/env python
"""Persistent NED sweeps: store shards + a distance-cache sidecar (paper §6-7).

The paper's design splits the work into *precompute once* (extract every
node's k-adjacent tree and its O(k) summaries) and *query many* (answer NED
similarity queries from the summaries, paying for exact TED* only when
forced).  This example extends that split across process boundaries with the
two durable artifacts of the persistence layer:

1. **Store shards** — ``save_sharded(store, directory, shards=N)`` writes
   the extraction as a manifest plus N shard files;
   ``ShardedTreeStore.load(directory)`` attaches them lazily, keeping at
   most ``max_resident`` shards decoded in memory at a time.
2. **Cache sidecar** — every exact TED* distance a run pays for is keyed by
   the pair of AHU canonical signatures (TED* is a pure function of the two
   isomorphism classes), so it can be saved (``cache_file=`` /
   ``save_cache()``) and reattached by the next process.

A *cold* process pays for extraction and every needed exact TED*.  A *warm*
process — here simulated by fresh objects re-attaching the same files —
re-runs the identical workload with **zero** exact TED* evaluations: the
shards answer "what are the trees and summaries", the sidecar answers
"what were the exact distances".

Run with::

    python examples/persistent_sweep.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.engine import (
    NedSearchEngine,
    ShardedTreeStore,
    TreeStore,
    pairwise_distance_matrix,
    save_sharded,
)
from repro.graph.generators import barabasi_albert_graph

K = 3
NODES = 60
SHARDS = 5
NEIGHBORS = 5
QUERIES = 10


def run_sweep(store, graph, cache_file: Path):
    """One sweep process: all-pairs matrix + a kNN pass, cache persisted."""
    matrix = pairwise_distance_matrix(store, mode="bound-prune", cache_file=cache_file)
    engine = NedSearchEngine(store, mode="bound-prune", cache_file=cache_file)
    answers = [
        engine.knn(engine.probe(graph, node), NEIGHBORS)
        for node in graph.nodes()[:QUERIES]
    ]
    engine.save_cache()
    exact = matrix.stats.exact_evaluations + engine.stats.exact_evaluations
    hits = matrix.stats.cache_hits + engine.stats.cache_hits
    return matrix, answers, exact, hits


def main() -> None:
    print("== Persistent sweep: save -> reload -> warm re-run ==")
    graph = barabasi_albert_graph(NODES, 2, seed=7)

    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp) / "store"
        cache_file = Path(tmp) / "distances.ned"

        # ---- cold process: extract, shard, sweep, persist the cache.
        start = time.perf_counter()
        dense = TreeStore.from_graph(graph, K)
        save_sharded(dense, store_dir, shards=SHARDS)
        store = ShardedTreeStore.load(store_dir)
        cold_matrix, cold_answers, cold_exact, _ = run_sweep(store, graph, cache_file)
        cold_seconds = time.perf_counter() - start
        shard_files = sorted(p.name for p in store_dir.iterdir())
        print(f"cold: extracted {len(dense)} trees, sharded into {SHARDS} files "
              f"({', '.join(shard_files[:3])}, ...)")
        print(f"cold: {cold_exact} exact TED* evaluations, {cold_seconds:.2f}s; "
              f"sidecar written to {cache_file.name}")

        # ---- warm process: attach shards + sidecar, same sweep, no exact work.
        start = time.perf_counter()
        warm_store = ShardedTreeStore.load(store_dir, max_resident=2)
        warm_matrix, warm_answers, warm_exact, warm_hits = run_sweep(
            warm_store, graph, cache_file
        )
        warm_seconds = time.perf_counter() - start
        print(f"warm: {warm_exact} exact TED* evaluations "
              f"({warm_hits} sidecar hits), {warm_seconds:.2f}s; "
              f"at most {warm_store.max_resident} of "
              f"{warm_store.shard_count} shards resident")

        assert warm_matrix.values == cold_matrix.values, "matrices must be identical"
        assert warm_answers == cold_answers, "kNN answers must be identical"
        assert warm_exact == 0, "a warm run pays for no exact TED*"
        speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
        print(f"identical results, {speedup:.1f}x faster warm "
              "(see BENCH_kernel.json's 'persistence' section for the CI trail)")


if __name__ == "__main__":
    main()
