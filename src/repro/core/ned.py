"""NED — inter-graph node similarity with edit distance (Section 3).

Given two nodes ``u ∈ G_u`` and ``v ∈ G_v`` and a level parameter ``k``::

    NED_k(u, v) = TED*( T(u, k), T(v, k) )

where ``T(·, k)`` is the unordered k-adjacent tree.  Because TED* is a metric
on trees and the k-adjacent tree of a node is extracted deterministically,
NED is a metric on nodes: identity (distance 0 iff the k-adjacent trees are
isomorphic), non-negativity, symmetry and the triangle inequality all carry
over (Section 7).  NED is monotonically non-decreasing in ``k`` (Lemma 5),
which the parameter-analysis experiments exploit.

The module exposes plain functions (:func:`ned`, :func:`directed_ned`,
:func:`weighted_ned`) plus :class:`NedComputer`, which caches extracted trees
when many pairwise distances against the same graphs are needed (nearest
neighbor queries, de-anonymization, indexing).
"""

from __future__ import annotations

import weakref
from typing import Dict, Hashable, Tuple

from repro.graph.graph import DiGraph, Graph
from repro.ted.ted_star import TedStarResult, ted_star, ted_star_detailed
from repro.ted.weighted import WeightSpec, level_weighted_ted_star
from repro.trees.adjacent import (
    incoming_k_adjacent_tree,
    k_adjacent_tree,
    outgoing_k_adjacent_tree,
)
from repro.trees.tree import Tree
from repro.utils.validation import check_positive_int

Node = Hashable


def ned(
    graph_u: Graph,
    u: Node,
    graph_v: Graph,
    v: Node,
    k: int,
    backend: str = "auto",
) -> float:
    """Return the NED distance between node ``u`` of ``graph_u`` and node ``v`` of ``graph_v``.

    ``k`` is the number of neighborhood levels considered (the paper's only
    parameter); ``k = 1`` compares bare nodes (always distance 0), larger
    ``k`` includes deeper neighborhood structure.
    """
    check_positive_int(k, "k")
    tree_u = k_adjacent_tree(graph_u, u, k)
    tree_v = k_adjacent_tree(graph_v, v, k)
    return ted_star(tree_u, tree_v, k=k, backend=backend)


def ned_from_trees(tree_u: Tree, tree_v: Tree, k: int, backend: str = "auto") -> float:
    """Return NED given already extracted k-adjacent trees."""
    check_positive_int(k, "k")
    return ted_star(tree_u, tree_v, k=k, backend=backend)


def directed_ned(
    graph_u: DiGraph,
    u: Node,
    graph_v: DiGraph,
    v: Node,
    k: int,
    backend: str = "auto",
) -> float:
    """Return the directed-graph NED (Section 3.3).

    The distance is the sum of TED* over the incoming k-adjacent trees and
    TED* over the outgoing k-adjacent trees; both components are metrics, so
    the sum is a metric as well.
    """
    check_positive_int(k, "k")
    in_u = incoming_k_adjacent_tree(graph_u, u, k)
    in_v = incoming_k_adjacent_tree(graph_v, v, k)
    out_u = outgoing_k_adjacent_tree(graph_u, u, k)
    out_v = outgoing_k_adjacent_tree(graph_v, v, k)
    incoming = ted_star(in_u, in_v, k=k, backend=backend)
    outgoing = ted_star(out_u, out_v, k=k, backend=backend)
    return incoming + outgoing


def weighted_ned(
    graph_u: Graph,
    u: Node,
    graph_v: Graph,
    v: Node,
    k: int,
    insert_delete_weight: WeightSpec = 1.0,
    move_weight: WeightSpec = 1.0,
    backend: str = "auto",
) -> float:
    """Return the weighted NED using Section 12's per-level weights.

    Levels closer to the root can be given larger weights so that differences
    near the query node dominate the distance; any strictly positive weights
    keep the result a metric.
    """
    check_positive_int(k, "k")
    tree_u = k_adjacent_tree(graph_u, u, k)
    tree_v = k_adjacent_tree(graph_v, v, k)
    detailed = ted_star_detailed(tree_u, tree_v, k=k, backend=backend)
    return level_weighted_ted_star(detailed, insert_delete_weight, move_weight)


class NedComputer:
    """Cached NED evaluator over one or two fixed graphs.

    Extracting a k-adjacent tree is a BFS over the node's neighborhood; when
    computing many pairwise distances (nearest neighbor queries, building a
    metric index, de-anonymization sweeps), the same trees are reused over
    and over.  :class:`NedComputer` memoises extracted trees per
    ``(graph, node, k)`` and exposes the same distance API as :func:`ned`.

    Example
    -------
    >>> from repro.graph import grid_road_graph
    >>> g1, g2 = grid_road_graph(6, 6, seed=1), grid_road_graph(6, 6, seed=2)
    >>> computer = NedComputer(k=3)
    >>> d = computer.distance(g1, 0, g2, 0)
    >>> d >= 0.0
    True
    """

    def __init__(self, k: int, backend: str = "auto") -> None:
        check_positive_int(k, "k")
        self.k = k
        self.backend = backend
        # Keyed by the graph object itself (weakly, so a discarded graph drops
        # its cached trees).  Keying by ``id(graph)`` would be unsafe: ids are
        # reused after garbage collection, which could silently serve trees of
        # a dead graph to a new one that happens to occupy the same address.
        self._tree_cache: "weakref.WeakKeyDictionary[Graph, Dict[Tuple[Node, int], Tree]]" = (
            weakref.WeakKeyDictionary()
        )

    def tree(self, graph: Graph, node: Node) -> Tree:
        """Return (and cache) the k-adjacent tree of ``node`` in ``graph``."""
        per_graph = self._tree_cache.get(graph)
        if per_graph is None:
            per_graph = self._tree_cache.setdefault(graph, {})
        key = (node, self.k)
        if key not in per_graph:
            per_graph[key] = k_adjacent_tree(graph, node, self.k)
        return per_graph[key]

    def distance(self, graph_u: Graph, u: Node, graph_v: Graph, v: Node) -> float:
        """Return NED between ``u`` and ``v`` using cached trees."""
        return ted_star(self.tree(graph_u, u), self.tree(graph_v, v), k=self.k,
                        backend=self.backend)

    def detailed(self, graph_u: Graph, u: Node, graph_v: Graph, v: Node) -> TedStarResult:
        """Return the full per-level TED* breakdown for a node pair."""
        return ted_star_detailed(self.tree(graph_u, u), self.tree(graph_v, v), k=self.k,
                                 backend=self.backend)

    def cache_size(self) -> int:
        """Return the number of cached k-adjacent trees."""
        return sum(len(per_graph) for per_graph in self._tree_cache.values())

    def clear_cache(self) -> None:
        """Drop all cached trees (e.g. after mutating a graph)."""
        self._tree_cache.clear()
