"""The multi-process NED service: protocol, shm, workers, server, client.

Covers the serving stack end to end:

* wire protocol — every plan kind round-trips to an *equal* plan
  (hypothesis property), unknown versions/fields/kinds raise typed
  :class:`~repro.exceptions.WireFormatError`, typed service errors survive
  encode → decode with their types;
* adaptive ticks — deterministic grow/shrink from observed tick feedback;
* shared memory — zero-copy export/attach bit-identity, child-process
  attach, unlink-exactly-once, no ``/dev/shm`` leaks (including after a
  worker crash);
* the worker pool — dispatched blocks bit-identical to local evaluation,
  small-block declines, crash degradation to the local path;
* the HTTP service — results bit-identical to a direct in-process session,
  per-tenant telemetry, typed overload/deadline errors across the wire.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.session import (
    CrossMatrixPlan,
    KnnPlan,
    NedSession,
    PairwiseMatrixPlan,
    RangePlan,
    TopLPlan,
)
from repro.engine.shards import ShardedTreeStore, save_sharded
from repro.engine.tree_store import TreeStore, summarize_tree
from repro.exceptions import (
    DeadlineError,
    DistanceError,
    OverloadError,
    WireFormatError,
)
from repro.graph.generators import grid_road_graph
from repro.resilience import FaultPlan, FaultSpec
from repro.serving import protocol
from repro.serving.shm import shm_available
from repro.serving.ticks import AdaptiveTicks
from repro.trees.adjacent import k_adjacent_tree
from repro.trees.tree import Tree

K = 2

#: Tree depth for the wire-protocol property tests.  Strategy-built parent
#: arrays have at most 8 entries, hence height <= 7, so every generated
#: probe summarises cleanly at this k.
K_WIRE = 8

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="shared-memory workers need numpy"
)


def _probe(graph, node, k=K):
    return summarize_tree(node, k_adjacent_tree(graph, node, k), k)


@pytest.fixture(scope="module")
def demo_graph():
    return grid_road_graph(6, 6, seed=3)


@pytest.fixture(scope="module")
def demo_store(demo_graph):
    return TreeStore.from_graph(demo_graph, k=K)


# ---------------------------------------------------------------------------
# Wire protocol: round-trips and typed rejections
# ---------------------------------------------------------------------------
@st.composite
def parent_arrays(draw):
    size = draw(st.integers(min_value=1, max_value=8))
    parents = [-1]
    for index in range(1, size):
        parents.append(draw(st.integers(min_value=0, max_value=index - 1)))
    return parents


@st.composite
def probes(draw):
    node = draw(
        st.one_of(
            st.integers(min_value=-100, max_value=100),
            st.text(alphabet="abc0", min_size=1, max_size=4),
        )
    )
    return summarize_tree(node, Tree(draw(parent_arrays())), K_WIRE)


@st.composite
def wire_plans(draw):
    kind = draw(st.sampled_from(["knn", "range", "topl", "pairwise"]))
    mode = draw(st.sampled_from([None, "exact", "bound-prune"]))
    if kind == "knn":
        return KnnPlan(
            draw(probes()),
            draw(st.integers(min_value=1, max_value=16)),
            mode=mode,
            index=draw(st.sampled_from([None, "linear", "bktree"])),
        )
    if kind == "range":
        return RangePlan(
            draw(probes()),
            draw(st.floats(min_value=0.0, max_value=8.0, allow_nan=False)),
            mode=mode,
            index=draw(st.sampled_from([None, "linear"])),
        )
    if kind == "topl":
        return TopLPlan(
            draw(probes()), draw(st.integers(min_value=1, max_value=16)), mode=mode
        )
    return PairwiseMatrixPlan(
        mode=draw(st.sampled_from(["exact", "hybrid"])),
        threshold=draw(
            st.one_of(
                st.none(),
                st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
            )
        ),
        chunk_size=draw(st.integers(min_value=1, max_value=256)),
    )


class TestProtocolRoundTrip:
    @given(plan=wire_plans())
    @settings(max_examples=80, deadline=None)
    def test_every_plan_kind_round_trips_equal(self, plan):
        decoded = protocol.decode_plan(protocol.encode_plan(plan), K_WIRE)
        assert decoded == plan
        # The wire form is pure JSON: dumps/loads must be the identity.
        assert protocol.decode_plan(
            json.loads(json.dumps(protocol.encode_plan(plan))), K_WIRE
        ) == plan

    def test_cross_matrix_round_trips(self, demo_graph):
        col_store = TreeStore(
            K, [_probe(demo_graph, node) for node in (0, 1, 2)]
        )
        plan = CrossMatrixPlan(col_store, mode="exact", threshold=1.5, chunk_size=32)
        decoded = protocol.decode_plan(protocol.encode_plan(plan), K)
        assert decoded.col_store.k == K
        assert decoded.col_store.entries() == col_store.entries()
        assert (decoded.mode, decoded.threshold, decoded.chunk_size) == (
            "exact",
            1.5,
            32,
        )
        assert decoded.executor is None  # executors never travel

    @given(probe=probes())
    @settings(max_examples=60, deadline=None)
    def test_probe_summaries_rebuild_identically(self, probe):
        decoded = protocol.decode_probe(protocol.encode_probe(probe), K_WIRE)
        assert decoded == probe


class TestProtocolRejections:
    def _request(self, demo_graph):
        return protocol.encode_request(
            [KnnPlan(_probe(demo_graph, 0), 3)], tenant="t"
        )

    def test_unknown_schema_version_is_typed(self, demo_graph):
        payload = self._request(demo_graph)
        payload[protocol.F_VERSION] = 99
        with pytest.raises(WireFormatError, match="version"):
            protocol.decode_request(payload, K)

    def test_wrong_format_marker_is_typed(self, demo_graph):
        payload = self._request(demo_graph)
        payload[protocol.F_FORMAT] = "not-ned-wire"
        with pytest.raises(WireFormatError):
            protocol.decode_request(payload, K)

    def test_unknown_field_is_typed(self, demo_graph):
        encoded = protocol.encode_plan(KnnPlan(_probe(demo_graph, 0), 3))
        encoded["surprise"] = 1
        with pytest.raises(WireFormatError, match="surprise"):
            protocol.decode_plan(encoded, K)

    def test_unknown_plan_kind_is_typed(self, demo_graph):
        encoded = protocol.encode_plan(KnnPlan(_probe(demo_graph, 0), 3))
        encoded[protocol.F_KIND] = "teleport"
        with pytest.raises(WireFormatError, match="teleport"):
            protocol.decode_plan(encoded, K)

    def test_empty_plan_list_is_typed(self):
        payload = {
            protocol.F_FORMAT: protocol.WIRE_FORMAT,
            protocol.F_VERSION: protocol.SCHEMA_VERSION,
            protocol.F_PLANS: [],
        }
        with pytest.raises(WireFormatError):
            protocol.decode_request(payload, K)

    @pytest.mark.parametrize(
        "error",
        [
            OverloadError("shed"),
            DeadlineError("expired"),
            WireFormatError("bad"),
            DistanceError("plan"),
        ],
    )
    def test_typed_errors_survive_the_wire(self, error):
        slot = protocol.encode_error(error)
        assert slot[protocol.F_OK] is False
        decoded = protocol.decode_error(slot[protocol.F_ERROR])
        assert type(decoded) is type(error)
        assert str(error) in str(decoded)

    def test_envelope_error_response_raises_typed(self):
        payload = protocol.encode_error_response(OverloadError("queue full"))
        with pytest.raises(OverloadError, match="queue full"):
            protocol.decode_response(payload)


# ---------------------------------------------------------------------------
# Adaptive ticks
# ---------------------------------------------------------------------------
class TestAdaptiveTicks:
    def test_grows_when_saturated_and_fast(self):
        ticks = AdaptiveTicks(target_tick_seconds=0.1, min_batch=2, max_batch=64)
        assert ticks.limit == 2
        ticks.observe(2, 0.01)
        assert ticks.limit == 4
        ticks.observe(4, 0.01)
        assert ticks.limit == 8
        assert ticks.grown == 2 and ticks.shrunk == 0

    def test_shrinks_on_slow_ticks_and_respects_floor(self):
        ticks = AdaptiveTicks(
            target_tick_seconds=0.1, min_batch=2, max_batch=64, initial=32
        )
        ticks.observe(32, 0.5)
        assert ticks.limit == 16
        for _ in range(8):
            ticks.observe(ticks.limit, 0.5)
        assert ticks.limit == 2  # never below min_batch
        assert ticks.shrunk >= 4

    def test_underfull_fast_ticks_hold_steady(self):
        ticks = AdaptiveTicks(target_tick_seconds=0.1, min_batch=4, max_batch=64)
        ticks.observe(1, 0.001)  # fast but nowhere near the limit
        assert ticks.limit == 4

    def test_replay_is_deterministic(self):
        feed = [(4, 0.01), (8, 0.01), (16, 0.4), (3, 0.02), (8, 0.01)]
        runs = []
        for _ in range(2):
            ticks = AdaptiveTicks(
                target_tick_seconds=0.05, min_batch=1, max_batch=128, initial=4
            )
            runs.append([ticks.observe(batch, tick) for batch, tick in feed])
        assert runs[0] == runs[1]

    def test_validation_is_typed(self):
        with pytest.raises(DistanceError):
            AdaptiveTicks(target_tick_seconds=0.0)
        with pytest.raises(DistanceError):
            AdaptiveTicks(min_batch=0)
        with pytest.raises(DistanceError):
            AdaptiveTicks(min_batch=8, max_batch=4)

    def test_session_server_accepts_adaptive_string(self, demo_store):
        import asyncio

        async def run():
            session = NedSession(demo_store)
            async with session.serve(max_batch="adaptive") as server:
                probe = session.probe(grid_road_graph(6, 6, seed=3), 0)
                result = await server.submit(KnnPlan(probe, 3))
                assert server.tick_limit >= 1
                return result

        assert asyncio.run(run())


# ---------------------------------------------------------------------------
# Shared memory
# ---------------------------------------------------------------------------
def _attach_and_read(handle, index):
    from repro.serving.shm import AttachedStore

    attached = AttachedStore(handle)
    try:
        return attached.parent_array(index), attached.signature(index)
    finally:
        attached.close()


@needs_shm
class TestSharedMemory:
    def test_export_attach_bit_identical(self, demo_store):
        from repro.serving.shm import AttachedStore, export_store

        with export_store(demo_store) as export:
            attached = AttachedStore(export.handle)
            try:
                packed = demo_store.packed_parent_arrays()
                signatures = demo_store.packed_signatures()
                for index in range(len(packed)):
                    assert attached.parent_array(index) == list(packed[index])
                    assert attached.signature(index) == signatures[index]
            finally:
                attached.close()

    def test_out_of_range_entry_is_typed(self, demo_store):
        from repro.serving.shm import AttachedStore, export_store

        with export_store(demo_store) as export:
            attached = AttachedStore(export.handle)
            try:
                with pytest.raises(DistanceError):
                    attached.parent_array(len(demo_store) + 7)
            finally:
                attached.close()

    def test_child_process_attach_is_zero_copy(self, demo_store):
        from concurrent.futures import ProcessPoolExecutor

        from repro.serving.shm import export_store

        with export_store(demo_store) as export:
            with ProcessPoolExecutor(max_workers=1) as pool:
                parents, signature = pool.submit(
                    _attach_and_read, export.handle, 0
                ).result()
            assert parents == list(demo_store.packed_parent_arrays()[0])
            assert signature == demo_store.packed_signatures()[0]

    def test_unlink_exactly_once_and_no_leak(self, demo_store):
        from repro.serving.shm import export_store

        export = export_store(demo_store)
        name = export.handle.name
        segment = Path("/dev/shm") / name.lstrip("/")
        if not segment.parent.exists():  # pragma: no cover - non-Linux
            pytest.skip("no /dev/shm on this platform")
        assert segment.exists()
        export.close()
        assert not segment.exists()
        export.close()  # idempotent: second close must not raise


# ---------------------------------------------------------------------------
# Worker pool
# ---------------------------------------------------------------------------
@needs_shm
class TestSharedWorkerPool:
    @pytest.fixture()
    def exported(self, demo_store):
        from repro.serving.shm import export_store
        from repro.serving.workers import SharedWorkerPool

        with export_store(demo_store) as export:
            pool = SharedWorkerPool(
                export.handle, demo_store, workers=2, min_pairs=2
            )
            try:
                yield pool
            finally:
                pool.close()

    def test_dispatch_bit_identical_to_local(self, demo_store, exported):
        session = NedSession(demo_store)
        entries = demo_store.entries()
        pairs = [(entries[i], entries[j]) for i in range(6) for j in range(6)]
        local = session.resolver.exact_many(pairs)
        dispatched = exported(pairs)
        assert dispatched == local

    def test_small_blocks_are_declined(self, demo_store, exported):
        entries = demo_store.entries()
        assert exported([(entries[0], entries[1])]) is None

    def test_worker_crash_degrades_to_local(self, demo_store, exported):
        assert exported.warm() >= 1  # force the forks so there are pids to kill
        for process in list(exported._pool._processes.values()):
            os.kill(process.pid, 9)
        entries = demo_store.entries()
        pairs = [(entries[i], entries[i + 1]) for i in range(8)]
        assert exported(pairs) is None  # declined, not raised
        assert exported.broken
        session = NedSession(demo_store)
        assert session.resolver.exact_many(pairs)  # local path still serves


# ---------------------------------------------------------------------------
# The HTTP service end to end
# ---------------------------------------------------------------------------
class TestService:
    @pytest.fixture()
    def sharded(self, demo_store, tmp_path):
        save_sharded(demo_store, tmp_path / "shards", shards=3)
        return ShardedTreeStore.load(tmp_path / "shards")

    def _plans(self, graph, session):
        return [
            KnnPlan(session.probe(graph, 0), 5),
            RangePlan(session.probe(graph, 7), 2.0),
            PairwiseMatrixPlan(mode="exact", chunk_size=16),
        ]

    @needs_shm
    def test_results_bit_identical_to_in_process_session(
        self, demo_graph, demo_store, sharded
    ):
        from repro.serving.client import NedServiceClient
        from repro.serving.server import NedServiceServer

        reference = NedSession(demo_store)
        expected = reference.execute_batch(self._plans(demo_graph, reference))

        session = NedSession(sharded)
        decodes_before = session.metrics.snapshot()["counters"].get(
            "shards.stream_decodes", 0
        )
        with NedServiceServer(session, workers=2, min_pairs=2) as server:
            client = NedServiceClient(port=server.port, tenant="suite")
            got = client.execute_batch(self._plans(demo_graph, reference))
            status = client.status()
            telemetry = client.telemetry()
        assert got[0] == expected[0]
        assert got[1] == expected[1]
        assert got[2].values == expected[2].values
        assert got[2].row_nodes == expected[2].row_nodes
        # Packing for the shm export streams each shard exactly once; the
        # workers themselves never re-decode anything (they attach the
        # segment), so the decode counter must not move while serving.
        decodes_after = session.metrics.snapshot()["counters"].get(
            "shards.stream_decodes", 0
        )
        assert decodes_after - decodes_before <= 3  # one per shard at most
        assert status[protocol.F_WORKERS] == 2
        assert status[protocol.F_K] == K
        merged = telemetry[protocol.F_MERGED]["counters"]
        assert merged["serving.requests"] == 1
        assert merged["serving.request_plans"] == 3
        assert "suite" in telemetry[protocol.F_TENANTS]
        session.close()

    def test_overload_and_deadline_errors_are_typed_across_the_wire(
        self, demo_graph, demo_store
    ):
        from repro.serving.client import NedServiceClient
        from repro.serving.server import NedServiceServer

        plan = FaultPlan(
            [
                FaultSpec("serving.request", error=OverloadError("shed by fault")),
                # Each spec's `seen` counter only advances when evaluation
                # reaches it; the overload spec raises on request 1 without
                # touching this one, so request 2 is its first sighting.
                FaultSpec("serving.request", error=DeadlineError("too late")),
            ]
        )
        session = NedSession(demo_store, faults=plan)
        probe = session.probe(demo_graph, 0)
        with NedServiceServer(session, workers=0) as server:
            client = NedServiceClient(port=server.port)
            with pytest.raises(OverloadError, match="shed by fault"):
                client.execute(KnnPlan(probe, 3))
            with pytest.raises(DeadlineError, match="too late"):
                client.execute(KnnPlan(probe, 3))
            # Third request: the one-shot faults are spent, service recovers.
            assert client.execute(KnnPlan(probe, 3))

    def test_malformed_payloads_are_typed_not_500(self, demo_store):
        import http.client

        from repro.serving.server import NedServiceServer

        session = NedSession(demo_store)
        with NedServiceServer(session, workers=0) as server:
            connection = http.client.HTTPConnection("127.0.0.1", server.port)
            try:
                connection.request(
                    "POST",
                    protocol.PATH_PLANS,
                    body=b"{not json",
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                body = json.loads(response.read())
            finally:
                connection.close()
            assert response.status == 400
            error = protocol.decode_error(body[protocol.F_ERROR])
            assert isinstance(error, WireFormatError)

    def test_unknown_endpoint_is_typed_404(self, demo_store):
        from repro.serving.client import NedServiceClient
        from repro.serving.server import NedServiceServer

        session = NedSession(demo_store)
        with NedServiceServer(session, workers=0) as server:
            client = NedServiceClient(port=server.port)
            payload = client._call("GET", "/v1/nope")
            assert protocol.F_ERROR in payload

    def test_client_unreachable_is_typed(self):
        from repro.serving.client import NedServiceClient

        client = NedServiceClient(port=1, timeout=0.5)
        with pytest.raises(WireFormatError, match="unreachable"):
            client.status()

    @needs_shm
    def test_shutdown_unlinks_segment_even_after_worker_crash(
        self, demo_graph, demo_store
    ):
        from repro.serving.client import NedServiceClient
        from repro.serving.server import NedServiceServer

        session = NedSession(demo_store)
        server = NedServiceServer(session, workers=2, min_pairs=2).start()
        name = server._export.handle.name
        segment = Path("/dev/shm") / name.lstrip("/")
        if not segment.parent.exists():  # pragma: no cover - non-Linux
            server.close()
            pytest.skip("no /dev/shm on this platform")
        assert segment.exists()
        for process in list(server._pool._pool._processes.values()):
            os.kill(process.pid, 9)
        client = NedServiceClient(port=server.port)
        # The crashed pool degrades the service to local evaluation; the
        # request still answers, bit-identical.
        reference = NedSession(demo_store)
        expected = reference.execute(PairwiseMatrixPlan(mode="exact"))
        got = client.execute(PairwiseMatrixPlan(mode="exact"))
        assert got.values == expected.values
        server.close()
        assert not segment.exists()  # unlinked exactly once, no leak
        server.close()  # idempotent
