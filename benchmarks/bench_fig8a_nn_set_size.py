"""Figure 8a — nearest-neighbor result set size vs parameter k."""

from _bench_utils import emit_tables

from repro.experiments.fig8_parameter_k import figure8_parameter_k


def test_figure8a_nn_set_size(benchmark):
    """Increasing k shrinks the set of candidates tied at the minimal distance."""
    results = benchmark.pedantic(
        lambda: figure8_parameter_k(ks=(1, 2, 3, 4), query_count=8, candidate_count=60,
                                    scale=0.4),
        rounds=1,
        iterations=1,
    )
    emit_tables({"figure8a": results["figure8a_nn_set_size"]})
    sizes = [row["avg_nn_set_size"] for row in results["figure8a_nn_set_size"].rows]
    assert sizes[0] >= sizes[-1]
