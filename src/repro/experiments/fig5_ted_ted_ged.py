"""Figure 5 — TED* vs exact TED vs exact GED (computation time and values).

Replicates Section 13.1: random node pairs are drawn from the CAR and PAR
stand-ins, their k-adjacent trees (and k-hop subgraphs for GED) extracted,
and the three distances computed on the same pairs.  Figure 5a reports the
average computation time per pair for each method and each k; Figure 5b
reports the average distance values.

Expected shape (matching the paper): TED* is orders of magnitude faster than
the exact, exponential TED and GED solvers, while its values track TED
closely and stay below GED's 2×TED* bound.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.datasets.registry import load_dataset_pair
from repro.experiments.common import default_backend, mean, sample_small_tree_pairs
from repro.experiments.reporting import ExperimentTable
from repro.ted.exact_ged import exact_graph_edit_distance
from repro.ted.exact_ted import exact_tree_edit_distance
from repro.ted.ted_star import ted_star
from repro.utils.rng import RngLike
from repro.utils.timer import time_call


def figure5_ted_ted_ged(
    ks: Sequence[int] = (2, 3, 4),
    pairs_per_k: int = 25,
    max_tree_size: int = 12,
    scale: float = 0.5,
    seed: RngLike = 7,
    datasets: Sequence[str] = ("CAR", "PAR"),
) -> Dict[str, ExperimentTable]:
    """Run the Figure 5 comparison and return the 5a (time) and 5b (value) tables.

    ``max_tree_size`` caps the neighborhood size so the exact solvers stay
    tractable, exactly as the paper restricts TED/GED to ~10-node instances.
    """
    graph_a, graph_b = load_dataset_pair(datasets[0], datasets[1], scale=scale, seed=seed)
    backend = default_backend()

    time_table = ExperimentTable(
        title="Figure 5a: average computation time per pair (seconds)",
        columns=["k", "pairs", "ted_star_time", "ted_time", "ged_time"],
        notes=[f"datasets={datasets}, max_tree_size={max_tree_size}, backend={backend}"],
    )
    value_table = ExperimentTable(
        title="Figure 5b: average distance values on the same pairs",
        columns=["k", "pairs", "ted_star_value", "ted_value", "ged_value"],
    )

    for k in ks:
        samples = sample_small_tree_pairs(
            graph_a, graph_b, k=k, count=pairs_per_k, max_tree_size=max_tree_size, seed=seed,
            max_attempts_factor=120,
        )
        ted_star_times: List[float] = []
        ted_times: List[float] = []
        ged_times: List[float] = []
        ted_star_values: List[float] = []
        ted_values: List[float] = []
        ged_values: List[float] = []
        for u, v, tree_u, tree_v in samples:
            star_value, star_time = time_call(ted_star, tree_u, tree_v, k, backend)
            ted_value, ted_time = time_call(exact_tree_edit_distance, tree_u, tree_v)
            subgraph_u = graph_a.k_hop_subgraph(u, k - 1)
            subgraph_v = graph_b.k_hop_subgraph(v, k - 1)
            if (
                subgraph_u.number_of_nodes() <= max_tree_size
                and subgraph_v.number_of_nodes() <= max_tree_size
            ):
                ged_value, ged_time = time_call(
                    exact_graph_edit_distance, subgraph_u, subgraph_v
                )
                ged_times.append(ged_time)
                ged_values.append(float(ged_value))
            ted_star_times.append(star_time)
            ted_times.append(ted_time)
            ted_star_values.append(star_value)
            ted_values.append(float(ted_value))

        time_table.add_row(
            k=k,
            pairs=len(samples),
            ted_star_time=mean(ted_star_times),
            ted_time=mean(ted_times),
            ged_time=mean(ged_times),
        )
        value_table.add_row(
            k=k,
            pairs=len(samples),
            ted_star_value=mean(ted_star_values),
            ted_value=mean(ted_values),
            ged_value=mean(ged_values),
        )
    return {"figure5a_time": time_table, "figure5b_values": value_table}
