"""repro — a full reproduction of "NED: An Inter-Graph Node Metric Based On Edit Distance".

The package implements the paper's primary contribution (the NED node metric
and the TED* modified tree edit distance it is built on) together with every
substrate and baseline its evaluation depends on: a graph substrate with
synthetic dataset generators, k-adjacent tree extraction, a from-scratch
Hungarian matcher, exact TED/GED reference solvers, HITS-based and
feature-based (ReFeX/NetSimile/OddBall) similarities, a VP-tree metric index,
the graph de-anonymization case study and the Hausdorff graph distance of the
appendix.

Quickstart
----------
>>> from repro import ned, grid_road_graph
>>> g1 = grid_road_graph(8, 8, seed=1)
>>> g2 = grid_road_graph(8, 8, seed=2)
>>> distance = ned(g1, 0, g2, 0, k=3)
>>> distance >= 0.0
True
"""

from repro.core.ned import NedComputer, directed_ned, ned, ned_from_trees, weighted_ned
from repro.graph.graph import DiGraph, Graph
from repro.graph.generators import (
    barabasi_albert_graph,
    community_graph,
    erdos_renyi_graph,
    grid_road_graph,
    power_law_cluster_graph,
    watts_strogatz_graph,
)
from repro.ted.ted_star import TedStarResult, ted_star, ted_star_detailed
from repro.ted.weighted import ted_star_upper_bound_weights, weighted_ted_star
from repro.ted.exact_ted import exact_tree_edit_distance
from repro.ted.exact_ged import exact_graph_edit_distance
from repro.trees.adjacent import (
    incoming_k_adjacent_tree,
    k_adjacent_tree,
    outgoing_k_adjacent_tree,
)
from repro.trees.tree import Tree

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # Core metric
    "ned",
    "directed_ned",
    "weighted_ned",
    "ned_from_trees",
    "NedComputer",
    # Tree edit distances
    "ted_star",
    "ted_star_detailed",
    "TedStarResult",
    "weighted_ted_star",
    "ted_star_upper_bound_weights",
    "exact_tree_edit_distance",
    "exact_graph_edit_distance",
    # Trees
    "Tree",
    "k_adjacent_tree",
    "incoming_k_adjacent_tree",
    "outgoing_k_adjacent_tree",
    # Graphs
    "Graph",
    "DiGraph",
    "grid_road_graph",
    "barabasi_albert_graph",
    "power_law_cluster_graph",
    "watts_strogatz_graph",
    "erdos_renyi_graph",
    "community_graph",
]
