"""ReFeX-style recursive structural features (Henderson et al., KDD 2011).

ReFeX ("Recursive Feature eXtraction") starts from *local* and *ego-net*
features of each node and recursively appends *regional* features: sums and
means of the current feature set over each node's neighbors.  After ``k``
recursions a node's vector summarises structure up to ``k`` hops away.

This is the "Feature-based similarity" the NED paper benchmarks against
(Figures 9-11): it is fast, works across graphs, but it is not a metric, it
compresses the neighborhood into ad-hoc statistics (so distinct
neighborhoods may collide), and nearest-neighbor queries require a full scan.

The implementation keeps the feature construction deterministic and
dependency-free; the optional ``prune_correlated`` step mimics ReFeX's
vertical pruning by dropping features that are (nearly) linear duplicates.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence

from repro.baselines.netsimile import clustering_coefficient
from repro.graph.graph import Graph
from repro.utils.validation import check_non_negative_int

Node = Hashable


def _base_features(graph: Graph, node: Node) -> List[float]:
    """Local + ego-net base features (degree, ego edges, ego boundary, clustering)."""
    neighbors = list(graph.neighbors(node))
    degree = len(neighbors)
    ego_nodes = set(neighbors) | {node}
    ego_edges = 0
    out_edges = 0
    for member in ego_nodes:
        for other in graph.neighbors(member):
            if other in ego_nodes:
                ego_edges += 1
            else:
                out_edges += 1
    ego_edges //= 2
    return [
        float(degree),
        float(ego_edges),
        float(out_edges),
        clustering_coefficient(graph, node),
    ]


def refex_feature_matrix(
    graph: Graph,
    recursions: int = 2,
    prune_correlated: bool = True,
    tolerance: float = 1e-9,
) -> Dict[Node, List[float]]:
    """Return ReFeX feature vectors for every node of ``graph``.

    Parameters
    ----------
    graph:
        The graph to featurise.
    recursions:
        Number of regional-aggregation rounds; ``recursions = r`` makes the
        features sensitive to structure up to roughly ``r + 1`` hops away.
    prune_correlated:
        Drop features that are exact (up to ``tolerance``) duplicates of an
        earlier feature, mirroring ReFeX's pruning of redundant columns.
    """
    check_non_negative_int(recursions, "recursions")
    nodes = list(graph.nodes())
    features: Dict[Node, List[float]] = {node: _base_features(graph, node) for node in nodes}

    for _ in range(recursions):
        width = len(next(iter(features.values()))) if nodes else 0
        augmented: Dict[Node, List[float]] = {}
        for node in nodes:
            neighbors = list(graph.neighbors(node))
            sums = [0.0] * width
            for neighbor in neighbors:
                neighbor_features = features[neighbor]
                for i in range(width):
                    sums[i] += neighbor_features[i]
            if neighbors:
                means = [value / len(neighbors) for value in sums]
            else:
                means = [0.0] * width
            augmented[node] = features[node] + sums + means
        features = augmented

    if prune_correlated and nodes:
        features = _prune_duplicate_columns(features, nodes, tolerance)
    return features


def refex_features(
    graph: Graph,
    node: Node,
    recursions: int = 2,
    feature_table: Dict[Node, List[float]] = None,
) -> List[float]:
    """Return the ReFeX feature vector of a single node.

    When many nodes of the same graph are queried, pass a pre-computed
    ``feature_table`` from :func:`refex_feature_matrix` to avoid recomputing
    the whole graph's features per call.
    """
    if feature_table is not None:
        return list(feature_table[node])
    # Single-node queries still need neighbor features up to `recursions`
    # hops, so computing the full table is the straightforward correct path.
    table = refex_feature_matrix(graph, recursions=recursions)
    return list(table[node])


def _prune_duplicate_columns(
    features: Dict[Node, List[float]],
    nodes: Sequence[Node],
    tolerance: float,
) -> Dict[Node, List[float]]:
    """Drop feature columns that duplicate an earlier column on every node."""
    width = len(features[nodes[0]])
    keep: List[int] = []
    for column in range(width):
        duplicate = False
        for kept in keep:
            if all(abs(features[n][column] - features[n][kept]) <= tolerance for n in nodes):
                duplicate = True
                break
        if not duplicate:
            keep.append(column)
    return {node: [features[node][i] for i in keep] for node in nodes}
