"""Tests for the experiment CLI argument handling.

The full harness is exercised by the benchmark suite; here only the argument
parsing and selection logic is tested, with the heavy ``run_all_experiments``
call replaced by a stub.
"""

import pytest

from repro.experiments import cli
from repro.experiments.reporting import ExperimentTable


@pytest.fixture
def stub_results(monkeypatch):
    table_a = ExperimentTable(title="A", columns=["x"])
    table_a.add_row(x=1)
    table_b = ExperimentTable(title="B", columns=["y"])
    table_b.add_row(y=2)
    results = {"exp_a": table_a, "exp_b": table_b}
    monkeypatch.setattr(cli, "run_all_experiments", lambda quick=True: results)
    return results


class TestParser:
    def test_defaults(self):
        args = cli.build_parser().parse_args([])
        assert not args.full
        assert args.only is None
        assert not args.list

    def test_full_and_only(self):
        args = cli.build_parser().parse_args(["--full", "--only", "x", "y"])
        assert args.full
        assert args.only == ["x", "y"]


class TestMain:
    def test_list_prints_names(self, stub_results, capsys):
        assert cli.main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "exp_a" in output and "exp_b" in output

    def test_prints_all_tables(self, stub_results, capsys):
        assert cli.main([]) == 0
        output = capsys.readouterr().out
        assert "=== exp_a ===" in output and "=== exp_b ===" in output

    def test_only_selects_subset(self, stub_results, capsys):
        assert cli.main(["--only", "exp_b"]) == 0
        output = capsys.readouterr().out
        assert "exp_b" in output and "=== exp_a ===" not in output

    def test_unknown_name_errors(self, stub_results, capsys):
        assert cli.main(["--only", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestMergeCache:
    def _sidecar(self, tmp_path, name, k=3):
        from repro.engine import TreeStore
        from repro.graph.generators import grid_road_graph
        from repro.ted.resolver import DEFAULT_CACHE_SIZE, BoundedNedDistance

        store = TreeStore.from_graph(grid_road_graph(4, 4, seed=1), k=k)
        resolver = BoundedNedDistance(k=k, cache_size=DEFAULT_CACHE_SIZE)
        entries = store.entries()
        resolver.exact(entries[0], entries[5])
        path = tmp_path / name
        resolver.save_cache(path)
        return path

    def test_merge_cache_subcommand(self, tmp_path, capsys):
        first = self._sidecar(tmp_path, "w0.ned")
        second = self._sidecar(tmp_path, "w1.ned")
        output = tmp_path / "merged.ned"
        assert cli.main(["merge-cache", str(output), str(first), str(second)]) == 0
        assert output.exists()
        out = capsys.readouterr().out
        assert "merged 2 sidecar(s)" in out

    def test_merge_cache_mismatch_fails_cleanly(self, tmp_path, capsys):
        first = self._sidecar(tmp_path, "w0.ned", k=3)
        second = self._sidecar(tmp_path, "w1.ned", k=2)
        output = tmp_path / "merged.ned"
        assert cli.main(["merge-cache", str(output), str(first), str(second)]) == 2
        assert "merge-cache failed" in capsys.readouterr().err
        assert not output.exists()

    def test_merge_cache_missing_input_fails_cleanly(self, tmp_path, capsys):
        output = tmp_path / "merged.ned"
        missing = tmp_path / "nope.ned"
        assert cli.main(["merge-cache", str(output), str(missing)]) == 2
        assert "merge-cache failed" in capsys.readouterr().err
