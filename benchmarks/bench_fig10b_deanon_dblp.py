"""Figure 10b — de-anonymization precision on the DBLP stand-in."""

from _bench_utils import emit_table

from repro.experiments.fig10_deanonymization import figure10b_dblp


def test_figure10b_deanonymize_dblp(benchmark):
    """Same comparison as Figure 10a on the DBLP stand-in with top-10 candidates."""
    table = benchmark.pedantic(
        lambda: figure10b_dblp(query_sample=10, candidate_sample=100, scale=0.25),
        rounds=1,
        iterations=1,
    )
    emit_table(table)
    naive_ned = [row["precision"] for row in table.rows
                 if row["scheme"] == "naive" and row["method"] == "NED"]
    assert naive_ned and naive_ned[0] >= 0.8
