"""Batch NED similarity engine: open a session once, query it many ways.

The pair-at-a-time API in :mod:`repro.core` re-extracts trees and re-runs
TED* for every call; the engine splits the work the way a data system would,
and — since the :class:`NedSession` layer — serves every query shape off one
warm piece of state:

* :mod:`repro.engine.tree_store` — :class:`TreeStore` bulk-extracts,
  canonizes and summarises the k-adjacent trees of all nodes of a graph in
  one pass, with ``save()``/``load()`` persistence.
* :mod:`repro.engine.shards` — :class:`ShardedTreeStore`: the same store
  persisted as a manifest plus N shard files, loaded lazily with a bounded
  LRU of resident shards.  Same surface as :class:`TreeStore`, so every
  consumer takes either.
* :mod:`repro.engine.session` — :class:`NedSession`, **the** query-execution
  layer: one store, one warm :class:`repro.ted.resolver.BoundedNedDistance`
  resolver (bound tiers + the signature-keyed exact-distance cache,
  on by default), the cache-sidecar lifecycle (warm-if-exists at open,
  save-on-close), a pluggable matrix executor, the batched executor, and the
  asyncio serving facade.  Matrices, search engines and the metric indexes
  are all thin consumers of a session.  When numpy/SciPy are available the
  session also auto-attaches the array-native batch TED* kernel
  (:mod:`repro.ted.batch`) — serial matrix builds, ``execute_batch`` and
  exact-mode scans then evaluate whole pair blocks over pre-compiled
  parent arrays, bit-identical to the per-pair scipy path (opt out with
  ``batch=False``).
* :mod:`repro.engine.matrix` — chunked pairwise/cross distance matrices
  (``serial`` / ``process`` / custom executors, ``bound-prune`` mode); the
  module-level functions open an ephemeral session per build.
* :mod:`repro.engine.search` — :class:`NedSearchEngine`: ``knn`` /
  ``range_search`` / ``top_l_candidates`` over any :mod:`repro.index`
  backend (plain or hybrid bound+triangle) or via bound-pruned scans, with
  per-query per-tier statistics.  Session-backed: engines built from one
  session share its warm cache.
* :mod:`repro.engine.stats` — the shared telemetry counters.

Every layer is also instrumented through :mod:`repro.obs`: sessions always
own a :class:`repro.obs.MetricsRegistry` (per-tier resolver latency
histograms, sidecar/shard timings, serving gauges — read them with
:meth:`NedSession.metrics_snapshot`), and passing ``trace=`` (or setting
``REPRO_TRACE``) adds nested wall-clock spans over warm-up, plan execution,
matrix passes and serving ticks at zero cost when left off.

The session workflow (open → warm → batch queries → close)
----------------------------------------------------------
The paper's Sections 6–7 split — extract trees and summaries once, answer
many queries from them — is a session lifecycle::

    from repro.engine import KnnPlan, NedSession

    with NedSession(store, cache_file="distances.ned") as session:   # open
        # warm: the sidecar (if present) pre-resolves known pairs;
        # every query below further warms the shared cache.
        matrix = session.pairwise_matrix(mode="bound-prune")
        plans = [KnnPlan(session.probe(graph, node), 5) for node in nodes]
        answers = session.execute_batch(plans)       # batched: dedup + share
    # close: the sidecar is saved back — the next process starts warm.

``execute_batch`` dedups plans whose probes share a canonical signature,
orders work so the cache and bound tiers are shared, and returns
bit-identical results to the per-query path with fewer-or-equal exact TED*
evaluations.  ``session.serve()`` wraps the same executor in an ``asyncio``
request queue draining into batch ticks, for callers that arrive one
``await`` at a time.  For durable precompute, ``save_sharded(store, dir)``
persists the extraction and ``ShardedTreeStore.load(dir)`` re-attaches it
lazily from any later process; a warm re-run of the same workload performs
zero exact evaluations (see ``examples/persistent_sweep.py`` and the
``persistence``/``serving`` sections of ``BENCH_kernel.json``).

Performance knobs (all on the session)
--------------------------------------
* ``backend`` — the bipartite matching solver inside TED*.  ``"auto"``
  (default) picks SciPy's C ``linear_sum_assignment`` when importable and
  the dependency-free pure-Python Hungarian solver otherwise.  Tie pairs may
  admit several optimal matchings, so the two solvers are each
  self-consistent but may disagree on rare pairs — compare like with like.
* ``cache_size`` — the signature-keyed LRU distance cache between the bound
  tiers and exact TED*, **on by default**
  (:data:`repro.ted.resolver.DEFAULT_CACHE_SIZE`) for every surface the
  session backs; this one knob replaced the divergent per-surface defaults.
  Pass ``0`` when raw touched-pair counters are the measurement (the tier
  ablations do).  ``stats.cache_hits`` / ``cache_misses`` /
  ``cache_hit_rate`` report the effect.
* ``executor`` — where matrix chunks run.  ``"serial"`` stays in-process;
  ``"process"`` ships the packed stores *once per worker* (process-pool
  initializer) and streams chunks of bare ``(i, j)`` index pairs.  If the
  pool cannot be created or breaks mid-run, the build finishes serially —
  re-running only the chunks that had not yielded — and records the
  downgrade in ``executor_used``.
* ``cache_file`` — the durable sidecar.  Since format v2 it persists
  per-entry *hit counts*, so an overflowing load keeps the hottest entries
  (not the newest), and :func:`repro.ted.resolver.merge_sidecars` (CLI:
  ``ned-experiments merge-cache``) compacts the sidecars of parallel sweep
  workers into one warm file, summing hit counts.

Quickstart
----------
>>> from repro.engine import NedSession
>>> from repro.graph.generators import grid_road_graph
>>> graph = grid_road_graph(6, 6, seed=1)
>>> with NedSession.from_graph(graph, k=3) as session:
...     neighbors = session.knn(session.probe(graph, 0), 3)
>>> neighbors[0][0]
0
"""

from repro.engine.matrix import (
    EXECUTORS,
    MODES,
    MatrixResult,
    cross_distance_matrix,
    pairwise_distance_matrix,
)
from repro.engine.search import INDEX_BACKENDS, SEARCH_MODES, NedSearchEngine
from repro.engine.session import (
    CrossMatrixPlan,
    KnnPlan,
    NedSession,
    PairwiseMatrixPlan,
    RangePlan,
    SessionServer,
    TopLPlan,
)
from repro.engine.shards import ShardedTreeStore, save_sharded, sharded_store_exists
from repro.engine.stats import EngineStats, QueryStats
from repro.engine.tree_store import StoredTree, TreeStore, summarize_tree
from repro.ted.resolver import (
    BOUND_TIERS,
    TIER_CASCADE,
    BoundedNedDistance,
    ResolutionInterval,
    merge_sidecars,
)

__all__ = [
    "TreeStore",
    "StoredTree",
    "summarize_tree",
    "ShardedTreeStore",
    "save_sharded",
    "sharded_store_exists",
    "NedSession",
    "SessionServer",
    "PairwiseMatrixPlan",
    "CrossMatrixPlan",
    "KnnPlan",
    "RangePlan",
    "TopLPlan",
    "NedSearchEngine",
    "pairwise_distance_matrix",
    "cross_distance_matrix",
    "MatrixResult",
    "EngineStats",
    "QueryStats",
    "BoundedNedDistance",
    "ResolutionInterval",
    "merge_sidecars",
    "BOUND_TIERS",
    "TIER_CASCADE",
    "MODES",
    "EXECUTORS",
    "SEARCH_MODES",
    "INDEX_BACKENDS",
]
