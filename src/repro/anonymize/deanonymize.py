"""De-anonymization via inter-graph node similarity (Section 13.5).

Setup: a *training graph* whose node identities are known, and an
*anonymised testing graph* produced by one of the schemes in
:mod:`repro.anonymize.anonymizers`.  For every anonymised node, the attacker
computes its similarity to the training nodes and keeps the top-``l`` most
similar ones; the node counts as successfully de-anonymised when its true
identity appears in that top-``l`` list.  The *precision* of a method is the
fraction of anonymised nodes successfully de-anonymised.

The evaluation is measure-agnostic: it takes a ``distance(train_node,
anon_node) -> float`` callable, so NED and the feature-based baseline plug in
through the same interface (and the benchmark harness reports both, as in
Figures 10-11).

For NED specifically there is also an engine-backed sweep
(:func:`deanonymization_precision_with_engine`): the training candidates'
k-adjacent trees are precomputed once in a :class:`repro.engine.TreeStore`
and every anonymised node is matched through
:meth:`repro.engine.NedSearchEngine.top_l_candidates`, which can skip most
exact TED* evaluations via bound-based pruning while returning exactly the
same candidate lists as the quadratic callable path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Hashable, List, Optional, Sequence, Tuple

from repro.anonymize.anonymizers import AnonymizedGraph
from repro.engine.matrix import MatrixResult, cross_distance_matrix
from repro.engine.search import NedSearchEngine
from repro.engine.stats import EngineStats
from repro.engine.tree_store import TreeStore
from repro.exceptions import ExperimentError
from repro.graph.graph import Graph
from repro.ted.resolver import DEFAULT_CACHE_SIZE
from repro.utils.rng import RngLike, sample_distinct
from repro.utils.validation import check_positive_int

Node = Hashable
PairDistance = Callable[[Node, Node], float]


@dataclass(frozen=True)
class DeanonymizationReport:
    """Outcome of a de-anonymization experiment.

    Attributes
    ----------
    precision:
        Fraction of evaluated anonymised nodes whose true identity appeared in
        their top-l candidate list.
    evaluated:
        Number of anonymised nodes evaluated.
    hits:
        Number of successful re-identifications.
    top_l:
        The ``l`` used for the candidate lists.
    scheme:
        The anonymization scheme evaluated.
    """

    precision: float
    evaluated: int
    hits: int
    top_l: int
    scheme: str


def deanonymize_node(
    anon_node: Node,
    training_nodes: Sequence[Node],
    distance: PairDistance,
    top_l: int,
) -> List[Tuple[Node, float]]:
    """Return the top-``l`` training candidates for one anonymised node.

    Candidates are sorted by ascending distance; ties are kept in a
    deterministic order so results are reproducible.
    """
    check_positive_int(top_l, "top_l")
    scored = [(train, distance(train, anon_node)) for train in training_nodes]
    scored.sort(key=lambda pair: (pair[1], repr(pair[0])))
    return scored[:top_l]


def deanonymization_precision(
    training_graph: Graph,
    anonymized: AnonymizedGraph,
    distance: PairDistance,
    top_l: int,
    sample_size: Optional[int] = None,
    seed: RngLike = 0,
    candidate_nodes: Optional[Sequence[Node]] = None,
) -> DeanonymizationReport:
    """Evaluate de-anonymization precision of a similarity measure.

    Parameters
    ----------
    training_graph:
        The graph with known identities (candidates are its nodes unless
        ``candidate_nodes`` restricts them).
    anonymized:
        The anonymised testing graph plus ground-truth identity mapping.
    distance:
        ``distance(training_node, anonymised_node)`` — smaller means more
        similar.  For NED this wraps :class:`repro.core.ned.NedComputer`;
        for the feature baseline it wraps a feature-vector distance.
    top_l:
        Size of the candidate list per anonymised node.
    sample_size:
        Evaluate only a random sample of anonymised nodes (useful because a
        full quadratic evaluation is expensive); ``None`` evaluates all.
    seed:
        Sampling seed.
    candidate_nodes:
        Restrict the training candidates (defaults to every training node).
    """
    check_positive_int(top_l, "top_l")
    candidates = list(candidate_nodes) if candidate_nodes is not None else training_graph.nodes()
    if not candidates:
        raise ExperimentError("no candidate training nodes to match against")
    targets = anonymized.pseudonyms()
    if sample_size is not None:
        targets = sample_distinct(targets, sample_size, seed)
    return _sweep(
        targets, anonymized, training_graph, top_l,
        lambda anon_node: deanonymize_node(anon_node, candidates, distance, top_l),
    )


def _sweep(
    targets: Sequence[Node],
    anonymized: AnonymizedGraph,
    training_graph: Graph,
    top_l: int,
    top_of: Callable[[Node], List[Tuple[Node, float]]],
) -> DeanonymizationReport:
    """Shared sweep loop: hit-count the candidate lists of every target.

    ``top_of(anon_node)`` produces the top-l candidate list — a pairwise
    callable ranking or an engine query; the hit/precision bookkeeping is
    identical either way.
    """
    hits = 0
    evaluated = 0
    for anon_node in targets:
        truth = anonymized.true_identity[anon_node]
        if truth not in training_graph:
            # The true node may have been split away from the training part;
            # skip it, as it cannot possibly be recovered.
            continue
        top = top_of(anon_node)
        evaluated += 1
        if any(candidate == truth for candidate, _ in top):
            hits += 1
    precision = hits / evaluated if evaluated else 0.0
    return DeanonymizationReport(
        precision=precision,
        evaluated=evaluated,
        hits=hits,
        top_l=top_l,
        scheme=anonymized.scheme,
    )


def deanonymization_precision_with_engine(
    training_graph: Graph,
    anonymized: AnonymizedGraph,
    k: int,
    top_l: int,
    mode: str = "bound-prune",
    backend: str = "auto",
    sample_size: Optional[int] = None,
    seed: RngLike = 0,
    candidate_nodes: Optional[Sequence[Node]] = None,
    training_store: Optional[TreeStore] = None,
) -> Tuple[DeanonymizationReport, EngineStats]:
    """Engine-backed NED de-anonymization sweep.

    Equivalent to :func:`deanonymization_precision` with a NED distance
    callable, but the training trees are extracted once into a
    :class:`~repro.engine.tree_store.TreeStore` and each anonymised node is
    matched with :meth:`~repro.engine.search.NedSearchEngine.top_l_candidates`
    — identical candidate lists (same distances, same ``(distance,
    repr(node))`` tie order), far fewer exact TED* evaluations when ``mode``
    is ``"bound-prune"``.  Returns the usual report plus the engine's
    accumulated counters.  The engine's session keeps the signature-keyed
    distance cache on (the session default), so ``exact_evaluations`` in
    the returned stats counts the *distinct* signature pairs the sweep
    forced — ``cache_hits`` reports the repeats answered from memory, and
    both count toward ``exact_evaluations_avoided``/``pruning_ratio``.

    ``training_store`` lets a caller reuse a store built earlier (or loaded
    from disk via :meth:`TreeStore.load`) across many sweeps; it must have
    been built over ``training_graph`` with the same ``k``.
    """
    check_positive_int(top_l, "top_l")
    candidates = list(candidate_nodes) if candidate_nodes is not None else training_graph.nodes()
    if not candidates:
        raise ExperimentError("no candidate training nodes to match against")
    if training_store is None:
        store = TreeStore.from_graph(training_graph, k, nodes=candidates)
    else:
        if training_store.k != k:
            raise ExperimentError(
                f"training_store was built with k={training_store.k}, expected k={k}"
            )
        store = training_store.subset(candidates)
    engine = NedSearchEngine(store, mode=mode, backend=backend)

    targets = anonymized.pseudonyms()
    if sample_size is not None:
        targets = sample_distinct(targets, sample_size, seed)
    report = _sweep(
        targets, anonymized, training_graph, top_l,
        lambda anon_node: engine.top_l_candidates(
            engine.probe(anonymized.graph, anon_node), top_l
        ),
    )
    return report, engine.stats


def top_l_from_matrix(
    matrix: MatrixResult, anon_node: Node, top_l: int
) -> List[Tuple[Node, float]]:
    """Return one anonymised node's top-``l`` candidate list from a matrix.

    ``matrix`` must be a cross distance matrix whose *rows* are training
    candidates and whose *columns* are anonymised nodes (the shape
    :func:`repro.engine.matrix.cross_distance_matrix` produces).  Ties break
    by ``repr(node)``, exactly like :func:`deanonymize_node`; ``inf``
    entries (pairs a matrix ``threshold`` pruned) are skipped.  Lookups go
    through the matrix's precomputed node→index dicts, so ranking one
    column is O(rows · log rows) with no per-candidate ``list.index`` scan.
    """
    check_positive_int(top_l, "top_l")
    column = matrix.col_index[anon_node]
    scored = [
        (train_node, row[column])
        for train_node, row in zip(matrix.row_nodes, matrix.values)
        if row[column] != math.inf
    ]
    scored.sort(key=lambda pair: (pair[1], repr(pair[0])))
    return scored[:top_l]


def deanonymization_precision_with_matrix(
    training_graph: Graph,
    anonymized: AnonymizedGraph,
    k: int,
    top_l: int,
    mode: str = "bound-prune",
    executor: str = "serial",
    backend: str = "auto",
    sample_size: Optional[int] = None,
    seed: RngLike = 0,
    candidate_nodes: Optional[Sequence[Node]] = None,
    training_store: Optional[TreeStore] = None,
    cache_size: int = DEFAULT_CACHE_SIZE,
) -> Tuple[DeanonymizationReport, EngineStats]:
    """Matrix-driven NED de-anonymization sweep.

    Builds one training×anonymised cross distance matrix (training trees in
    rows, attacked nodes in columns) and ranks every column through
    :func:`top_l_from_matrix` — identical candidate lists to
    :func:`deanonymization_precision` with a NED callable (same distances,
    same ``(distance, repr(node))`` tie order), but the batch build gets the
    engine's whole performance arsenal: bound-based resolution (``mode``),
    the signature-keyed distance cache (duplicate tree shapes are computed
    once), and the zero-copy ``"process"`` executor for multi-core sweeps.
    Returns the usual report plus the matrix build's counters.
    """
    check_positive_int(top_l, "top_l")
    candidates = list(candidate_nodes) if candidate_nodes is not None else training_graph.nodes()
    if not candidates:
        raise ExperimentError("no candidate training nodes to match against")
    if training_store is None:
        store = TreeStore.from_graph(training_graph, k, nodes=candidates)
    else:
        if training_store.k != k:
            raise ExperimentError(
                f"training_store was built with k={training_store.k}, expected k={k}"
            )
        store = training_store.subset(candidates)

    targets = anonymized.pseudonyms()
    if sample_size is not None:
        targets = sample_distinct(targets, sample_size, seed)
    anon_store = TreeStore.from_graph(anonymized.graph, k, nodes=targets)
    matrix = cross_distance_matrix(
        store, anon_store, mode=mode, executor=executor, backend=backend,
        cache_size=cache_size,
    )
    report = _sweep(
        targets, anonymized, training_graph, top_l,
        lambda anon_node: top_l_from_matrix(matrix, anon_node, top_l),
    )
    return report, matrix.stats
