"""Deterministic random-number helpers.

Every stochastic component of the library (graph generators, anonymizers,
experiment drivers) accepts either a seed or a :class:`random.Random`
instance.  Centralising the coercion logic here keeps experiments
reproducible and avoids accidental use of the global :mod:`random` state.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Sequence, TypeVar, Union

T = TypeVar("T")

RngLike = Union[None, int, random.Random]


def ensure_rng(seed: RngLike = None) -> random.Random:
    """Return a :class:`random.Random` for ``seed``.

    ``seed`` may be ``None`` (a fresh, OS-seeded generator), an integer seed,
    or an existing :class:`random.Random` instance which is returned as-is.
    """
    if isinstance(seed, random.Random):
        return seed
    if seed is None:
        # repro: allow[NED-DET01] seed=None is the documented opt-in to an OS-seeded generator
        return random.Random()
    if isinstance(seed, int):
        return random.Random(seed)
    raise TypeError(f"seed must be None, int or random.Random, got {type(seed).__name__}")


def sample_distinct(population: Sequence[T], count: int, rng: RngLike = None) -> List[T]:
    """Sample ``count`` distinct elements from ``population``.

    If ``count`` exceeds the population size, the whole population is returned
    in a shuffled order instead of raising, which is convenient for
    experiments run on reduced-scale synthetic datasets.
    """
    rng = ensure_rng(rng)
    if count >= len(population):
        return shuffled(population, rng)
    return rng.sample(list(population), count)


def shuffled(items: Iterable[T], rng: RngLike = None) -> List[T]:
    """Return a new list with the elements of ``items`` in random order."""
    rng = ensure_rng(rng)
    result = list(items)
    rng.shuffle(result)
    return result
