"""Figure 10a — de-anonymization precision on the PGP stand-in."""

from _bench_utils import emit_table

from repro.experiments.fig10_deanonymization import figure10a_pgp


def test_figure10a_deanonymize_pgp(benchmark):
    """NED reaches at least the precision of the feature baseline on every scheme."""
    table = benchmark.pedantic(
        lambda: figure10a_pgp(query_sample=12, candidate_sample=100, scale=0.3),
        rounds=1,
        iterations=1,
    )
    emit_table(table)
    by_scheme = {}
    for row in table.rows:
        by_scheme.setdefault(row["scheme"], {})[row["method"]] = row["precision"]
    # On average over the three schemes NED should not be worse than Feature.
    ned_avg = sum(values["NED"] for values in by_scheme.values()) / len(by_scheme)
    feature_avg = sum(values["Feature"] for values in by_scheme.values()) / len(by_scheme)
    assert ned_avg >= feature_avg - 0.1
    assert by_scheme["naive"]["NED"] >= 0.8
