"""Exhaustive verification of TED* on *all* small rooted unordered trees.

Random testing can miss structured corner cases; these tests enumerate every
rooted unordered tree up to a small size (via canonical-form deduplication of
all parent arrays) and verify the metric properties, the agreement bounds
with exact TED/GED, and the weighted upper bound on the complete set of
pairs/triples.  This is the strongest correctness evidence in the suite short
of a formal proof.
"""

from itertools import product

import pytest

from repro.ted.bounds import tree_as_graph
from repro.ted.exact_ged import exact_graph_edit_distance
from repro.ted.exact_ted import exact_tree_edit_distance
from repro.ted.ted_star import ted_star
from repro.ted.weighted import ted_star_upper_bound_weights
from repro.trees.canonize import canonical_string, trees_isomorphic
from repro.trees.tree import Tree


def all_trees(max_nodes: int):
    """Enumerate one representative of every rooted unordered tree with <= max_nodes."""
    representatives = {}
    for n in range(1, max_nodes + 1):
        # Parent arrays with parent[i] < i enumerate all labeled rooted trees.
        for parents in product(*[range(i) for i in range(1, n)]):
            tree = Tree([-1] + list(parents))
            key = canonical_string(tree)
            representatives.setdefault(key, tree)
    return list(representatives.values())


TREES_5 = all_trees(5)
TREES_4 = all_trees(4)


def test_enumeration_counts():
    # Number of rooted unordered trees with 1..5 nodes: 1, 1, 2, 4, 9 -> 17 total.
    assert len(TREES_4) == 8
    assert len(TREES_5) == 17


@pytest.mark.parametrize("index", range(len(TREES_5)))
def test_self_distance_zero(index):
    tree = TREES_5[index]
    assert ted_star(tree, tree) == 0.0


def test_identity_symmetry_and_bounds_on_all_pairs():
    for first in TREES_5:
        for second in TREES_5:
            distance = ted_star(first, second)
            assert distance == ted_star(second, first)
            assert (distance == 0.0) == trees_isomorphic(first, second)
            assert distance >= abs(first.size() - second.size())
            assert distance <= (first.size() - 1) + (second.size() - 1)
            assert abs(distance - round(distance)) < 1e-9


def test_exact_ted_and_ged_bounds_on_all_pairs():
    for first in TREES_5:
        for second in TREES_5:
            star = ted_star(first, second)
            exact = exact_tree_edit_distance(first, second)
            ged = exact_graph_edit_distance(tree_as_graph(first), tree_as_graph(second))
            w_plus = ted_star_upper_bound_weights(first, second)
            # Section 11: GED on the trees is bounded by twice TED*.
            assert ged <= 2 * star + 1e-9
            # Lemma 7: the weighted variant dominates exact TED.
            assert exact <= w_plus + 1e-9
            # TED* and TED share the zero set (both are metrics on unordered trees).
            assert (star == 0.0) == (exact == 0)


def test_triangle_inequality_on_all_triples_of_4_node_trees():
    distances = {}
    for i, first in enumerate(TREES_4):
        for j, second in enumerate(TREES_4):
            distances[(i, j)] = ted_star(first, second)
    size = len(TREES_4)
    for i in range(size):
        for j in range(size):
            for k in range(size):
                assert distances[(i, k)] <= distances[(i, j)] + distances[(j, k)] + 1e-9
