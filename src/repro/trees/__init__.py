"""Rooted unordered trees, k-adjacent tree extraction and canonization.

The NED metric compares two nodes through their *k-adjacent trees* — the top
``k`` levels of the BFS tree rooted at each node (Definition 1 of the paper).
This subpackage provides:

* :class:`repro.trees.tree.Tree` — a compact rooted unordered tree.
* :func:`repro.trees.adjacent.k_adjacent_tree` — extraction from undirected
  graphs, plus the incoming/outgoing variants for directed graphs.
* :mod:`repro.trees.canonize` — AHU canonical forms and rooted-tree
  isomorphism, used by TED*'s per-level canonization and by tests.
* :mod:`repro.trees.levels` — the level-indexed view of a tree consumed by
  the TED* algorithm.
* :mod:`repro.trees.random_trees` — random tree generators for tests and
  benchmarks.
"""

from repro.trees.tree import Tree
from repro.trees.adjacent import (
    incoming_k_adjacent_tree,
    k_adjacent_tree,
    outgoing_k_adjacent_tree,
)
from repro.trees.canonize import ahu_signature, canonical_string, trees_isomorphic
from repro.trees.levels import LevelView
from repro.trees.random_trees import random_tree, random_tree_with_depth

__all__ = [
    "Tree",
    "k_adjacent_tree",
    "incoming_k_adjacent_tree",
    "outgoing_k_adjacent_tree",
    "ahu_signature",
    "canonical_string",
    "trees_isomorphic",
    "LevelView",
    "random_tree",
    "random_tree_with_depth",
]
