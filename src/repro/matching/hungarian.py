"""From-scratch O(n³) solver for the assignment problem.

This is the "improved Hungarian algorithm" the paper relies on for the
per-level bipartite matching of TED*.  The implementation uses the standard
shortest-augmenting-path formulation with dual potentials (as in the
Jonker-Volgenant algorithm), which runs in O(n³) time for an ``n × n`` cost
matrix and returns both the optimal assignment and its total cost.

Costs may be any finite real numbers (TED* only uses non-negative integers,
but the solver does not assume that).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.exceptions import MatchingError

INF = float("inf")


def hungarian(cost_matrix: Sequence[Sequence[float]]) -> Tuple[List[int], float]:
    """Solve the square assignment problem for ``cost_matrix``.

    Parameters
    ----------
    cost_matrix:
        An ``n × n`` matrix; ``cost_matrix[i][j]`` is the cost of assigning
        row ``i`` to column ``j``.

    Returns
    -------
    (assignment, total_cost):
        ``assignment[i]`` is the column assigned to row ``i``; ``total_cost``
        is the minimal total assignment cost.

    Raises
    ------
    MatchingError
        If the matrix is empty, ragged or not square.
    """
    n = len(cost_matrix)
    if n == 0:
        return [], 0.0
    for row in cost_matrix:
        if len(row) != n:
            raise MatchingError("cost matrix must be square")

    # Potentials over rows (u) and columns (v); way[j] remembers the previous
    # column on the shortest augmenting path.  Index 0 is a sentinel.
    u = [0.0] * (n + 1)
    v = [0.0] * (n + 1)
    match_col = [0] * (n + 1)  # match_col[j] = row matched to column j (1-based; 0 = free)

    for i in range(1, n + 1):
        match_col[0] = i
        j0 = 0
        minv = [INF] * (n + 1)
        used = [False] * (n + 1)
        way = [0] * (n + 1)
        while True:
            used[j0] = True
            i0 = match_col[j0]
            delta = INF
            j1 = -1
            for j in range(1, n + 1):
                if used[j]:
                    continue
                cur = cost_matrix[i0 - 1][j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(n + 1):
                if used[j]:
                    u[match_col[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if match_col[j0] == 0:
                break
        # Augment along the found path.
        while j0:
            j1 = way[j0]
            match_col[j0] = match_col[j1]
            j0 = j1

    assignment = [0] * n
    for j in range(1, n + 1):
        if match_col[j] != 0:
            assignment[match_col[j] - 1] = j - 1
    total = sum(cost_matrix[i][assignment[i]] for i in range(n))
    return assignment, float(total)
