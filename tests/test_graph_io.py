"""Tests for edge-list I/O and networkx conversion."""

import pytest

from repro.exceptions import GraphError
from repro.graph.convert import from_networkx, to_networkx
from repro.graph.graph import DiGraph, Graph
from repro.graph.io import read_edge_list, write_edge_list


class TestEdgeListIO:
    def test_round_trip_undirected(self, tmp_path, path_graph):
        path = tmp_path / "graph.txt"
        write_edge_list(path_graph, path)
        loaded = read_edge_list(path)
        assert loaded.number_of_nodes() == path_graph.number_of_nodes()
        assert sorted(map(sorted, loaded.edges())) == sorted(map(sorted, path_graph.edges()))

    def test_round_trip_directed(self, tmp_path, small_digraph):
        path = tmp_path / "digraph.txt"
        write_edge_list(small_digraph, path)
        loaded = read_edge_list(path, directed=True)
        assert isinstance(loaded, DiGraph)
        assert sorted(loaded.edges()) == sorted(small_digraph.edges())

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "comments.txt"
        path.write_text("# comment\n% other comment\n\n1 2\n2 3\n")
        loaded = read_edge_list(path)
        assert loaded.number_of_edges() == 2

    def test_string_nodes_preserved(self, tmp_path):
        path = tmp_path / "strings.txt"
        path.write_text("alice bob\nbob carol\n")
        loaded = read_edge_list(path)
        assert loaded.has_edge("alice", "bob")

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1\n")
        with pytest.raises(GraphError):
            read_edge_list(path)


class TestNetworkxConversion:
    networkx = pytest.importorskip("networkx")

    def test_to_networkx_undirected(self, path_graph):
        nx_graph = to_networkx(path_graph)
        assert nx_graph.number_of_nodes() == 5
        assert nx_graph.number_of_edges() == 4
        assert not nx_graph.is_directed()

    def test_to_networkx_directed(self, small_digraph):
        nx_graph = to_networkx(small_digraph)
        assert nx_graph.is_directed()
        assert nx_graph.number_of_edges() == small_digraph.number_of_edges()

    def test_from_networkx_round_trip(self, path_graph):
        back = from_networkx(to_networkx(path_graph))
        assert isinstance(back, Graph)
        assert sorted(map(sorted, back.edges())) == sorted(map(sorted, path_graph.edges()))

    def test_from_networkx_directed_round_trip(self, small_digraph):
        back = from_networkx(to_networkx(small_digraph))
        assert isinstance(back, DiGraph)
        assert sorted(back.edges()) == sorted(small_digraph.edges())
