"""Deterministic, seeded fault injection for the engine stack.

A :class:`FaultPlan` is a schedule of named faults aimed at the instrumented
*sites* of the engine — the places a real deployment actually fails:

========================  ====================================================
site                      where it fires
========================  ====================================================
``"shards.decode"``       :meth:`ShardedTreeStore._decode_shard` (slow disks,
                          torn shard files)
``"sidecar.load"``        reading a distance-cache sidecar
                          (:meth:`BoundedNedDistance.load_cache` /
                          ``warm_from``)
``"sidecar.save"``        writing a sidecar (:meth:`save_cache`)
``"executor.dispatch"``   process-pool chunk dispatch in
                          :mod:`repro.engine.matrix` (worker death)
``"kernel.batch"``        the array-native ``ted_star_block`` exact tier
``"kernel.pair"``         a per-pair exact TED* evaluation
``"serving.tick"``        a :class:`SessionServer` batch tick
``"serving.request"``     one HTTP request in the multi-process NED
                          service (:class:`repro.serving.NedServiceServer`)
``"io.replace"``          between temp-write and ``os.replace`` in
                          :func:`repro.utils.io.atomic_pickle_dump`
                          (process kill mid-persist; see :func:`inject_io_faults`)
========================  ====================================================

Each :class:`FaultSpec` names a site and a fault kind — ``"error"`` (raise a
typed exception), ``"delay"`` (sleep), ``"corrupt"`` (signal the site to
apply a one-shot, site-appropriate corruption), ``"kill"`` (raise the
site's process-death exception, e.g. ``BrokenExecutor`` at the executor) —
plus *when*: skip the first ``after`` activations, fire at most ``fires``
times, optionally with ``probability`` drawn from a per-spec RNG seeded by
``(plan seed, spec index, site, kind)``.  Everything is deterministic: the
same plan against the same workload injects the same faults at the same
activations, which is what lets the chaos suite compare a faulted run
against a fault-free reference bit for bit.

Sites are *cooperative*: instrumented code calls ``plan.fire(site)`` and
honours the returned corruption flag.  A session wires its plan through
every layer it owns (:class:`repro.engine.session.NedSession`'s ``faults=``
parameter); nothing fires when no plan is installed, and the per-call cost
of the disabled path is one attribute check.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Type, Union

from repro.exceptions import FaultInjectedError, ResilienceError

#: Fault kinds a spec may request.
FAULT_KINDS = ("error", "delay", "corrupt", "kill")

#: The canonical fault-site registry: every instrumented site, in one
#: importable table.  Both halves of the contract consume it — runtime
#: (:class:`FaultSpec` rejects unknown sites unless ``custom=True``, so a
#: typo in a chaos schedule fails fast instead of silently never firing)
#: and static analysis (``ned-lint`` rule ``NED-REG01`` cross-checks every
#: ``fire("...")``/``FaultSpec("...")`` literal in the tree against it).
SITES = (
    "shards.decode",
    "sidecar.load",
    "sidecar.save",
    "executor.dispatch",
    "kernel.batch",
    "kernel.pair",
    "serving.tick",
    "serving.request",
    "io.replace",
)

#: Backward-compatible alias for :data:`SITES`.
FAULT_SITES = SITES


class ResilienceWarning(UserWarning):
    """Warning category for degradations the engine survives.

    Emitted when a fallback preserves availability at some cost — serial
    matrix fallback after pool death, a cold session start over a broken
    sidecar, a breaker-driven backend degrade — so operators see *that* and
    *why* the engine degraded without the run failing.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: what to inject, where, and when.

    Parameters
    ----------
    site:
        The instrumented site name (see :data:`SITES`); unknown sites are
        rejected unless ``custom=True``.
    kind:
        ``"error"`` raises (``error`` or :class:`FaultInjectedError`);
        ``"delay"`` sleeps ``delay`` seconds; ``"corrupt"`` tells the site
        to apply its one-shot corruption; ``"kill"`` raises the site's
        process-death exception (or ``error`` when given).
    after:
        Skip this many activations of the site before becoming eligible —
        "the third shard decode fails", deterministically.
    fires:
        Fire at most this many times (``None`` = unlimited).  The default
        of 1 makes faults one-shot, the transient-failure shape retries
        are meant to heal.
    probability:
        Chance of firing per eligible activation, drawn from a per-spec
        deterministic RNG.  1.0 (default) always fires.
    delay:
        Sleep duration for ``kind="delay"``.
    error:
        Exception instance (or class) to raise for ``"error"``/``"kill"``.
    custom:
        Opt out of site validation for a site not in :data:`SITES` (an
        application-defined injection point outside the engine's registry).
    """

    site: str
    kind: str = "error"
    after: int = 0
    fires: Optional[int] = 1
    probability: float = 1.0
    delay: float = 0.05
    error: Union[BaseException, Type[BaseException], None] = None
    custom: bool = False

    def __post_init__(self) -> None:
        if not self.custom and self.site not in SITES:
            raise ResilienceError(
                f"unknown fault site {self.site!r}; expected one of {SITES} "
                "(pass custom=True for an application-defined site)"
            )
        if self.kind not in FAULT_KINDS:
            raise ResilienceError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.after < 0:
            raise ResilienceError(f"after must be >= 0, got {self.after}")
        if self.fires is not None and self.fires < 1:
            raise ResilienceError(f"fires must be >= 1 or None, got {self.fires}")
        if not 0.0 < self.probability <= 1.0:
            raise ResilienceError(
                f"probability must be in (0, 1], got {self.probability}"
            )
        if self.delay < 0:
            raise ResilienceError(f"delay must be >= 0, got {self.delay}")


class FaultPlan:
    """A deterministic schedule of :class:`FaultSpec` injections.

    ``fire(site)`` is the whole runtime surface: instrumented code calls it
    at each activation of a site, and the plan raises / sleeps / returns a
    corruption flag according to the matching specs.  ``activations`` and
    ``injected`` expose per-site counts for assertions, and an attached
    :class:`~repro.obs.metrics.MetricsRegistry` receives
    ``resilience.faults_injected.<site>`` counters.

    Example
    -------
    >>> plan = FaultPlan([FaultSpec("shards.decode", after=1)], seed=7)
    >>> plan.fire("shards.decode")  # first activation: spec not yet eligible
    False
    >>> try:
    ...     plan.fire("shards.decode")
    ... except Exception as error:
    ...     type(error).__name__
    'FaultInjectedError'
    >>> plan.fire("shards.decode")  # one-shot: spent after firing once
    False
    """

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed
        #: Per-site activation counts (every ``fire`` call, fault or not).
        self.activations: Dict[str, int] = {}
        #: Per-site counts of faults actually injected.
        self.injected: Dict[str, int] = {}
        self._spec_seen: List[int] = [0] * len(self.specs)
        self._spec_fired: List[int] = [0] * len(self.specs)
        self._rngs: List[random.Random] = [
            random.Random(f"{seed}:{index}:{spec.site}:{spec.kind}")
            for index, spec in enumerate(self.specs)
        ]
        self.metrics = None
        self._sleep: Callable[[float], None] = time.sleep

    def attach_metrics(self, registry) -> None:
        """Count injections into ``registry`` (duck-typed; ``None`` detaches)."""
        self.metrics = registry

    def injected_total(self) -> int:
        """Total faults injected across every site."""
        return sum(self.injected.values())

    def fire(
        self,
        site: str,
        kill_error: Union[BaseException, Type[BaseException], None] = None,
    ) -> bool:
        """Activate ``site``; returns True when a *corruption* fault fired.

        ``"error"``/``"kill"`` specs raise (``kill`` prefers the caller's
        ``kill_error``, the site-appropriate process-death exception);
        ``"delay"`` specs sleep and fall through, so a delay can stack with
        a later error at the same site.
        """
        self.activations[site] = self.activations.get(site, 0) + 1
        corrupt = False
        for index, spec in enumerate(self.specs):
            if spec.site != site:
                continue
            self._spec_seen[index] += 1
            if self._spec_seen[index] <= spec.after:
                continue
            if spec.fires is not None and self._spec_fired[index] >= spec.fires:
                continue
            if spec.probability < 1.0 and self._rngs[index].random() >= spec.probability:
                continue
            self._spec_fired[index] += 1
            self.injected[site] = self.injected.get(site, 0) + 1
            if self.metrics is not None:
                self.metrics.inc(f"resilience.faults_injected.{site}")
            if spec.kind == "delay":
                self._sleep(spec.delay)
                continue
            if spec.kind == "corrupt":
                corrupt = True
                continue
            raise _resolve_error(spec, site, kill_error)
        return corrupt


def _resolve_error(
    spec: FaultSpec,
    site: str,
    kill_error: Union[BaseException, Type[BaseException], None],
) -> BaseException:
    """Pick the exception an ``error``/``kill`` spec raises at ``site``."""
    chosen = spec.error
    if chosen is None and spec.kind == "kill":
        chosen = kill_error
    if chosen is None:
        detail = "injected worker kill" if spec.kind == "kill" else "injected fault"
        return FaultInjectedError(site, detail)
    if isinstance(chosen, BaseException):
        return chosen
    return chosen(f"injected {spec.kind} at site {site!r}")


@contextmanager
def inject_io_faults(plan: FaultPlan, site: str = "io.replace") -> Iterator[FaultPlan]:
    """Route :func:`repro.utils.io.atomic_pickle_dump`'s pre-replace hook
    through ``plan`` for the duration of the block.

    The hook runs *after* the temp file is fully written and *before*
    ``os.replace`` — exactly the window where a process kill must leave the
    previous file intact.  An ``"error"``/``"kill"`` spec at ``site``
    simulates that kill; the crash-consistency tests assert the prior
    artifact is still loadable afterwards.
    """
    from repro.utils import io as io_module

    previous = io_module.set_replace_hook(lambda path: plan.fire(site))
    try:
        yield plan
    finally:
        io_module.set_replace_hook(previous)
