"""Tests for the NED inter-graph node metric."""

import pytest

from repro.core.ned import NedComputer, directed_ned, ned, ned_from_trees, weighted_ned
from repro.graph.generators import grid_road_graph
from repro.graph.graph import DiGraph, Graph
from repro.trees.adjacent import k_adjacent_tree
from repro.ted.ted_star import ted_star


class TestNed:
    def test_identical_nodes_in_identical_graphs(self, path_graph):
        other = path_graph.copy()
        assert ned(path_graph, 2, other, 2, k=3) == 0.0

    def test_structurally_equivalent_nodes_across_graphs(self):
        # Center of a 5-star vs center of another 5-star: identical k-trees.
        a = Graph([(0, i) for i in range(1, 6)])
        b = Graph([("c", f"leaf{i}") for i in range(5)])
        assert ned(a, 0, b, "c", k=2) == 0.0

    def test_different_degrees_give_positive_distance(self, path_graph, star_graph):
        assert ned(path_graph, 2, star_graph, 0, k=2) == 3.0

    def test_k1_always_zero(self, path_graph, star_graph):
        assert ned(path_graph, 0, star_graph, 0, k=1) == 0.0

    def test_equals_ted_star_on_extracted_trees(self, small_road_graph):
        other = grid_road_graph(8, 8, seed=99)
        k = 3
        expected = ted_star(
            k_adjacent_tree(small_road_graph, 5, k), k_adjacent_tree(other, 10, k), k=k
        )
        assert ned(small_road_graph, 5, other, 10, k=k) == expected

    def test_symmetry_across_graphs(self, small_road_graph, small_powerlaw_graph):
        forward = ned(small_road_graph, 3, small_powerlaw_graph, 7, k=3)
        backward = ned(small_powerlaw_graph, 7, small_road_graph, 3, k=3)
        assert forward == backward

    def test_monotone_in_k(self, small_road_graph, small_powerlaw_graph):
        previous = 0.0
        for k in range(1, 5):
            current = ned(small_road_graph, 2, small_powerlaw_graph, 5, k=k)
            assert current >= previous
            previous = current

    def test_triangle_inequality_across_three_graphs(self, small_road_graph):
        graph_b = grid_road_graph(7, 7, seed=5)
        graph_c = grid_road_graph(6, 6, seed=9)
        k = 3
        d_ab = ned(small_road_graph, 1, graph_b, 2, k=k)
        d_bc = ned(graph_b, 2, graph_c, 3, k=k)
        d_ac = ned(small_road_graph, 1, graph_c, 3, k=k)
        assert d_ac <= d_ab + d_bc

    def test_invalid_k(self, path_graph):
        with pytest.raises(ValueError):
            ned(path_graph, 0, path_graph, 1, k=0)

    def test_ned_from_trees(self, path_graph, star_graph):
        tree_a = k_adjacent_tree(path_graph, 2, 2)
        tree_b = k_adjacent_tree(star_graph, 0, 2)
        assert ned_from_trees(tree_a, tree_b, k=2) == ned(path_graph, 2, star_graph, 0, k=2)


class TestWeightedNed:
    def test_unit_weights_match_plain(self, path_graph, star_graph):
        assert weighted_ned(path_graph, 2, star_graph, 0, k=3) == ned(
            path_graph, 2, star_graph, 0, k=3
        )

    def test_root_heavy_weights_emphasise_close_levels(self, path_graph, star_graph):
        heavy = weighted_ned(
            path_graph, 2, star_graph, 0, k=3,
            insert_delete_weight=lambda level: 10.0 / level,
            move_weight=lambda level: 10.0 / level,
        )
        assert heavy >= ned(path_graph, 2, star_graph, 0, k=3)

    def test_identity_preserved(self, path_graph):
        assert weighted_ned(path_graph, 2, path_graph.copy(), 2, k=3,
                            insert_delete_weight=2.0, move_weight=3.0) == 0.0


class TestDirectedNed:
    def test_identical_directed_nodes(self, small_digraph):
        other = small_digraph.copy()
        assert directed_ned(small_digraph, 0, other, 0, k=3) == 0.0

    def test_direction_matters(self):
        # Node with only outgoing edges vs node with only incoming edges.
        fan_out = DiGraph([(0, 1), (0, 2), (0, 3)])
        fan_in = DiGraph([(1, 0), (2, 0), (3, 0)])
        assert directed_ned(fan_out, 0, fan_in, 0, k=2) == 6.0

    def test_symmetry(self, small_digraph):
        other = DiGraph([(0, 1), (1, 2), (2, 0), (3, 1)])
        forward = directed_ned(small_digraph, 0, other, 0, k=3)
        backward = directed_ned(other, 0, small_digraph, 0, k=3)
        assert forward == backward

    def test_sum_of_incoming_and_outgoing_components(self):
        a = DiGraph([(0, 1), (2, 0)])
        b = DiGraph([(0, 1), (0, 2), (3, 0), (4, 0)])
        assert directed_ned(a, 0, b, 0, k=2) == 2.0


class TestNedComputer:
    def test_matches_plain_ned(self, small_road_graph, small_powerlaw_graph):
        computer = NedComputer(k=3)
        assert computer.distance(small_road_graph, 0, small_powerlaw_graph, 1) == ned(
            small_road_graph, 0, small_powerlaw_graph, 1, k=3
        )

    def test_tree_cache_grows_and_clears(self, small_road_graph):
        computer = NedComputer(k=2)
        computer.distance(small_road_graph, 0, small_road_graph, 1)
        computer.distance(small_road_graph, 0, small_road_graph, 2)
        assert computer.cache_size() == 3
        computer.clear_cache()
        assert computer.cache_size() == 0

    def test_detailed_breakdown(self, small_road_graph, small_powerlaw_graph):
        computer = NedComputer(k=3)
        detailed = computer.detailed(small_road_graph, 0, small_powerlaw_graph, 1)
        assert detailed.distance == computer.distance(
            small_road_graph, 0, small_powerlaw_graph, 1
        )
        assert detailed.k == 3

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            NedComputer(k=0)
