"""Benchmark-suite conftest: expose pytest's capture manager to the helpers.

pytest captures stdout/stderr at the file-descriptor level, which would
swallow the paper-style tables the benchmark modules print; the autouse
fixture below hands the capture manager to ``_bench_utils`` so
``emit_table`` can temporarily disable capture and make the tables part of
the ``pytest benchmarks/ --benchmark-only`` output.
"""

from __future__ import annotations

import pytest

import _bench_utils


@pytest.fixture(autouse=True)
def _expose_capture_manager(request):
    """Make the capture manager available to emit_table for the test's duration."""
    _bench_utils.CAPTURE_MANAGER = request.config.pluginmanager.getplugin("capturemanager")
    yield
    _bench_utils.CAPTURE_MANAGER = None
