"""Zero-copy export of a tree store into ``multiprocessing.shared_memory``.

The packed parent arrays are the store's whole exact-tier working set
(:meth:`~repro.engine.tree_store.TreeStore.packed_parent_arrays`): every
tree is one small int array, and TED* needs nothing else.  This module
flattens all of them into **one** shared-memory segment —

::

    [ offsets : int64 x (n + 1) | values : int64 x total ]

— where entry ``i``'s parent array is ``values[offsets[i]:offsets[i+1]]``.
The server exports once; each worker attaches the segment by name and
reconstructs numpy views in place (:class:`AttachedStore`), so N workers
share one resident copy of the store instead of decoding N pickles.  The
acceptance check for "attached, not copied" is the store's own
``shards.stream_decodes`` counter: exporting a sharded store costs exactly
one streaming pass, and workers perform zero decodes.

Lifecycle is the sharp edge.  POSIX shared memory outlives processes, so a
leaked segment survives the test run in ``/dev/shm``:

* the server owns unlinking, via :meth:`StoreExport.close` — idempotent,
  so shutdown paths that overlap (signal handler + ``finally``) unlink
  **exactly once**, even after a worker crash;
* workers must *not* unlink (a crashing worker would tear the store out
  from under its siblings).  Python's ``resource_tracker`` would do
  exactly that at worker exit, so :func:`attach_store` unregisters the
  attachment from tracking (Python 3.13+ has ``track=False`` for the same
  purpose; we fall back to unregistering on older runtimes).

Everything here is gated on numpy (:func:`shm_available`); the serving
package imports without it and the server simply refuses ``workers > 0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.exceptions import DistanceError

try:  # gate, don't require: tier-1 environments may lack numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None


def shm_available() -> bool:
    """True when numpy (and hence the zero-copy worker path) is usable."""
    return _np is not None


def _require_numpy():
    if _np is None:
        raise DistanceError(
            "the shared-memory store path needs numpy; run the server with "
            "workers=0 or install numpy"
        )
    return _np


@dataclass(frozen=True)
class StoreHandle:
    """The small picklable description workers need to attach a store.

    ``name`` is the shared-memory segment; ``entry_count``/``values_length``
    recover the two views' shapes; ``k`` is the store's tree depth;
    ``signatures`` (AHU-canonical, aligned with entry order) let a worker
    both validate the indices it is handed and memoize compiled trees.
    """

    name: str
    entry_count: int
    values_length: int
    k: int
    signatures: Tuple[str, ...]


class StoreExport:
    """The server-side owner of one exported store segment.

    Create with :func:`export_store`; pass :attr:`handle` to workers; call
    :meth:`close` (idempotent, unlink-exactly-once) when serving stops.
    Context-manager use closes on exit.
    """

    def __init__(self, shm, handle: StoreHandle) -> None:
        self._shm = shm
        self.handle = handle
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def nbytes(self) -> int:
        return self._shm.size

    def __enter__(self) -> "StoreExport":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Close *and unlink* the segment; safe to call any number of times.

        The export is the one owner of the segment's lifetime: overlapping
        shutdown paths (atexit + ``finally`` + signal handling) all funnel
        here, and the flag makes the unlink happen exactly once — a second
        unlink of a POSIX shm name raises, and a *missed* one leaks the
        segment into ``/dev/shm`` past the process's death.
        """
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        self._shm.unlink()


def export_store(store, metrics=None) -> StoreExport:
    """Flatten ``store``'s packed parent arrays into one shared segment.

    ``store`` is duck-typed (:class:`~repro.engine.tree_store.TreeStore` or
    :class:`~repro.engine.shards.ShardedTreeStore` — anything with
    ``packed_parent_arrays()`` / ``packed_signatures()`` / ``k``).  Counts
    ``serving.shm_exports`` and ``serving.shm_export_bytes`` into
    ``metrics`` when given.
    """
    np = _require_numpy()
    from multiprocessing import shared_memory

    packed = store.packed_parent_arrays()
    signatures = tuple(store.packed_signatures())
    offsets = np.zeros(len(packed) + 1, dtype=np.int64)
    for index, parents in enumerate(packed):
        offsets[index + 1] = offsets[index] + len(parents)
    total = int(offsets[-1])
    nbytes = max(1, (len(offsets) + total) * 8)
    shm = shared_memory.SharedMemory(create=True, size=nbytes)
    offsets_view = np.ndarray(len(offsets), dtype=np.int64, buffer=shm.buf)
    values_view = np.ndarray(
        total, dtype=np.int64, buffer=shm.buf, offset=len(offsets) * 8
    )
    offsets_view[:] = offsets
    for index, parents in enumerate(packed):
        values_view[offsets[index]:offsets[index + 1]] = parents
    handle = StoreHandle(
        name=shm.name,
        entry_count=len(packed),
        values_length=total,
        k=store.k,
        signatures=signatures,
    )
    if metrics is not None:
        metrics.inc("serving.shm_exports")
        metrics.inc("serving.shm_export_bytes", nbytes)
    return StoreExport(shm, handle)


def _attach_untracked(name: str):
    """Attach an existing segment without taking over its lifetime.

    An attaching process does not own the segment, so it must neither
    unlink it at exit nor disturb the owner's tracker bookkeeping.  Python
    3.13+ exposes ``track=False`` for exactly this.  On older runtimes the
    attach re-registers the name — but every attacher here (the worker
    pool's children) shares the server's ``resource_tracker`` process, and
    its cache is a per-name *set*: the re-registration is an idempotent
    no-op, and the server's single ``unlink()`` unregisters cleanly.  (An
    explicit ``unregister`` on attach would be worse: it removes the
    *owner's* entry from the shared set, and the owner's later unlink then
    trips a tracker-side KeyError.)
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track= parameter; see docstring
        return shared_memory.SharedMemory(name=name)


class AttachedStore:
    """A worker-side zero-copy view of an exported store.

    Reconstructs the offsets/values numpy views over the attached buffer —
    no decode, no copy — and serves parent arrays by entry index.  Close
    detaches (never unlinks; the server's :class:`StoreExport` owns that).
    """

    def __init__(self, handle: StoreHandle) -> None:
        np = _require_numpy()
        self.handle = handle
        self._shm = _attach_untracked(handle.name)
        self._offsets = np.ndarray(
            handle.entry_count + 1, dtype=np.int64, buffer=self._shm.buf
        )
        self._values = np.ndarray(
            handle.values_length,
            dtype=np.int64,
            buffer=self._shm.buf,
            offset=(handle.entry_count + 1) * 8,
        )
        self._closed = False

    def __len__(self) -> int:
        return self.handle.entry_count

    @property
    def k(self) -> int:
        return self.handle.k

    def parent_array(self, index: int) -> List[int]:
        """Entry ``index``'s parent array, as the plain list Tree expects."""
        if not 0 <= index < self.handle.entry_count:
            raise DistanceError(
                f"store index {index} out of range [0, {self.handle.entry_count})"
            )
        start = int(self._offsets[index])
        stop = int(self._offsets[index + 1])
        return self._values[start:stop].tolist()

    def signature(self, index: int) -> str:
        """Entry ``index``'s canonical signature (for validation/memo keys)."""
        return self.handle.signatures[index]

    def close(self) -> None:
        """Detach the views and the segment (idempotent; never unlinks)."""
        if self._closed:
            return
        self._closed = True
        # The views alias shm.buf; drop them first or close() raises
        # BufferError for exported pointers.
        self._offsets = None
        self._values = None
        self._shm.close()
