"""Baseline node-similarity measures the paper compares NED against.

* :mod:`repro.baselines.hits_similarity` — Blondel et al.'s HITS-based
  similarity between all node pairs of two graphs (iterated similarity
  matrix; not a metric, slow).
* :mod:`repro.baselines.refex` — ReFeX-style recursive structural features;
  the "Feature-based similarity" of the paper's experiments.
* :mod:`repro.baselines.netsimile` / :mod:`repro.baselines.oddball` —
  ego-net feature extractors (special cases of ReFeX with one recursion).
* :mod:`repro.baselines.feature_distance` — distances and full-scan nearest
  neighbor queries over feature vectors.
* :mod:`repro.baselines.simrank` — SimRank, the classic intra-graph
  link-based similarity, included for completeness of the related-work
  comparison (it cannot compare inter-graph nodes).
* :mod:`repro.baselines.overlap` — Jaccard / Sørensen–Dice / Ochiai and
  k-hop neighborhood-overlap coefficients (the "primitive" methods of §2,
  which are identically zero for inter-graph nodes).
* :mod:`repro.baselines.graphlets` — graphlet-orbit count features used for
  biological networks.
"""

from repro.baselines.hits_similarity import hits_similarity_matrix, hits_node_similarity
from repro.baselines.refex import refex_features, refex_feature_matrix
from repro.baselines.netsimile import netsimile_features
from repro.baselines.oddball import oddball_features
from repro.baselines.feature_distance import (
    euclidean_distance,
    feature_distance,
    feature_knn,
    normalize_features,
)
from repro.baselines.simrank import simrank
from repro.baselines.overlap import (
    dice_similarity,
    jaccard_similarity,
    k_hop_overlap_similarity,
    ochiai_similarity,
    overlap_similarity,
)
from repro.baselines.graphlets import graphlet_feature_table, graphlet_features

__all__ = [
    "hits_similarity_matrix",
    "hits_node_similarity",
    "refex_features",
    "refex_feature_matrix",
    "netsimile_features",
    "oddball_features",
    "euclidean_distance",
    "feature_distance",
    "feature_knn",
    "normalize_features",
    "simrank",
    "jaccard_similarity",
    "dice_similarity",
    "ochiai_similarity",
    "k_hop_overlap_similarity",
    "overlap_similarity",
    "graphlet_features",
    "graphlet_feature_table",
]
