"""Experiment drivers reproducing every table and figure of the paper's §13.

Each ``figN_*`` module exposes one or more functions that run the
corresponding experiment on the synthetic datasets and return
:class:`repro.experiments.reporting.ExperimentTable` objects — the same rows
or series the paper plots.  The benchmark harness under ``benchmarks/`` calls
these drivers with laptop-scale parameters, and
:mod:`repro.experiments.harness` can run the full suite in one go
(``python -m repro.experiments.cli``).
"""

from repro.experiments.reporting import ExperimentTable, format_table
from repro.experiments.harness import run_all_experiments

__all__ = ["ExperimentTable", "format_table", "run_all_experiments"]
