"""Edge-list I/O for graphs.

The paper's datasets (SNAP / KONECT) ship as whitespace-separated edge lists,
so this module reads and writes that format.  Lines starting with ``#`` or
``%`` are treated as comments, matching both SNAP and KONECT conventions.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.exceptions import GraphError
from repro.graph.graph import DiGraph, Graph

PathLike = Union[str, Path]


def read_edge_list(path: PathLike, directed: bool = False) -> Union[Graph, DiGraph]:
    """Read a whitespace-separated edge list from ``path``.

    Node identifiers are parsed as integers when possible and kept as strings
    otherwise.  ``directed`` selects the returned graph class.
    """
    graph: Union[Graph, DiGraph] = DiGraph() if directed else Graph()
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line or line.startswith("#") or line.startswith("%"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(
                    f"{path}:{line_number}: expected at least two columns, got {line!r}"
                )
            u, v = _parse_node(parts[0]), _parse_node(parts[1])
            graph.add_edge(u, v)
    return graph


def write_edge_list(graph: Union[Graph, DiGraph], path: PathLike) -> None:
    """Write ``graph`` to ``path`` as a whitespace-separated edge list."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(f"# nodes={graph.number_of_nodes()} edges={graph.number_of_edges()}\n")
        for u, v in graph.edges():
            handle.write(f"{u}\t{v}\n")


def _parse_node(token: str) -> Union[int, str]:
    """Parse an edge-list token as ``int`` when possible, else keep the string."""
    try:
        return int(token)
    except ValueError:
        return token
