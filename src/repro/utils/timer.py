"""Lightweight wall-clock timing helpers used by the experiment harness."""

from __future__ import annotations

import time
from typing import Any, Callable, Tuple


class Timer:
    """Context manager measuring elapsed wall-clock time in seconds.

    Example
    -------
    >>> with Timer() as t:
    ...     sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self.start

    @property
    def elapsed_ms(self) -> float:
        """Elapsed time in milliseconds."""
        return self.elapsed * 1000.0


def time_call(func: Callable[..., Any], *args: Any, **kwargs: Any) -> Tuple[Any, float]:
    """Call ``func`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - start
