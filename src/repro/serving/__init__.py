"""Multi-process NED serving: one resident store, many cheap clients.

Before this package existed, :meth:`repro.engine.session.NedSession.serve`
was an asyncio facade *inside one process*: every client still had to open
its own session, decode its own copy of the packed store, and re-warm its
own exact-distance cache.  The serving package is the process/protocol
split that removes those N per-process copies:

* a **server process** (:class:`~repro.serving.server.NedServiceServer`,
  ``ned-serve``) owns the sharded store, the single warm sidecar-backed
  cache and the batch-tick loop;
* the store's packed parent arrays are exported **once** into
  :mod:`multiprocessing.shared_memory` (:mod:`repro.serving.shm`), and N
  worker processes reconstruct numpy views zero-copy
  (:mod:`repro.serving.workers`) to evaluate exact TED* blocks — one
  resident copy of the data, no per-worker pickles;
* clients speak a small HTTP/JSON protocol
  (:mod:`repro.serving.protocol`, :class:`~repro.serving.client.
  NedServiceClient`) whose wire schema is the session's frozen plan
  objects, versioned and strictly validated;
* batch ticks adapt (:mod:`repro.serving.ticks`): the tick size grows and
  shrinks against a target tick latency, trading latency against
  throughput from the observed ``serving.batch_size`` /
  ``serving.tick_seconds`` stream;
* backpressure reuses the typed failure semantics of
  :mod:`repro.resilience` — a full queue sheds with
  :class:`~repro.exceptions.OverloadError`, an expired request answers
  with :class:`~repro.exceptions.DeadlineError`, both travelling the wire
  as typed JSON errors; and
* every request is metered into a per-tenant
  :class:`~repro.obs.MetricsRegistry`, folded into the ``/v1/telemetry``
  endpoint with :func:`repro.obs.merge_snapshots`.

The package's import surface stays stdlib-only; numpy is required only by
the shared-memory path (``workers > 0``), which is gated by
:func:`repro.serving.shm.shm_available`.
"""

from repro.serving.protocol import (
    SCHEMA_VERSION,
    WIRE_FORMAT,
    decode_plan,
    decode_result,
    encode_plan,
    encode_result,
)
from repro.serving.ticks import AdaptiveTicks

__all__ = [
    "AdaptiveTicks",
    "SCHEMA_VERSION",
    "WIRE_FORMAT",
    "decode_plan",
    "decode_result",
    "encode_plan",
    "encode_result",
    "NedServiceServer",
    "NedServiceClient",
    "AttachedStore",
    "SharedWorkerPool",
    "export_store",
    "shm_available",
]

#: Lazily resolved exports: the server/client pull in http.server /
#: http.client and the engine session machinery, the shm/worker surface
#: pulls in numpy gating; importing repro.serving for the protocol tables
#: alone (e.g. from the linter) must stay cheap.
_LAZY_EXPORTS = {
    "NedServiceServer": ("repro.serving.server", "NedServiceServer"),
    "NedServiceClient": ("repro.serving.client", "NedServiceClient"),
    "AttachedStore": ("repro.serving.shm", "AttachedStore"),
    "SharedWorkerPool": ("repro.serving.workers", "SharedWorkerPool"),
    "export_store": ("repro.serving.shm", "export_store"),
    "shm_available": ("repro.serving.shm", "shm_available"),
}


def __getattr__(name):
    target = _LAZY_EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(target[0]), target[1])
