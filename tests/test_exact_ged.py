"""Tests for the exact graph edit distance baseline."""

import itertools

import pytest

from repro.exceptions import DistanceError
from repro.graph.generators import erdos_renyi_graph
from repro.graph.graph import Graph
from repro.ted.exact_ged import exact_graph_edit_distance


def brute_force_ged(first: Graph, second: Graph) -> int:
    """Reference GED by exhaustive enumeration of partial injective mappings."""
    nodes1, nodes2 = first.nodes(), second.nodes()
    if len(nodes1) > len(nodes2):
        first, second = second, first
        nodes1, nodes2 = nodes2, nodes1
    edges1 = {frozenset(edge) for edge in first.edges()}
    edges2 = {frozenset(edge) for edge in second.edges()}
    best = len(nodes1) + len(nodes2) + len(edges1) + len(edges2)
    for size in range(len(nodes1) + 1):
        for subset in itertools.combinations(nodes1, size):
            for image in itertools.permutations(nodes2, size):
                mapping = dict(zip(subset, image))
                common = sum(
                    1
                    for edge in edges1
                    if all(endpoint in mapping for endpoint in edge)
                    and frozenset(mapping[endpoint] for endpoint in edge) in edges2
                )
                cost = (len(nodes1) - size) + (len(nodes2) - size)
                cost += (len(edges1) - common) + (len(edges2) - common)
                best = min(best, cost)
    return best


class TestKnownValues:
    def test_identical_graphs(self, path_graph):
        assert exact_graph_edit_distance(path_graph, path_graph) == 0

    def test_isomorphic_graphs(self):
        a = Graph([(0, 1), (1, 2)])
        b = Graph([("x", "y"), ("y", "z")])
        assert exact_graph_edit_distance(a, b) == 0

    def test_single_edge_removal(self):
        a = Graph([(0, 1), (1, 2), (2, 0)])
        b = Graph([(0, 1), (1, 2)])
        assert exact_graph_edit_distance(a, b) == 1

    def test_single_node_insertion(self):
        a = Graph([(0, 1)])
        b = Graph([(0, 1)])
        b.add_node(2)
        assert exact_graph_edit_distance(a, b) == 1

    def test_empty_vs_triangle(self):
        empty = Graph()
        empty.add_nodes_from(range(3))
        triangle = Graph([(0, 1), (1, 2), (2, 0)])
        assert exact_graph_edit_distance(empty, triangle) == 3

    def test_path_vs_star(self):
        path = Graph([(0, 1), (1, 2), (2, 3)])
        star = Graph([(0, 1), (0, 2), (0, 3)])
        assert exact_graph_edit_distance(path, star) == 2

    def test_symmetry(self):
        a = erdos_renyi_graph(6, 0.4, seed=1)
        b = erdos_renyi_graph(5, 0.4, seed=2)
        assert exact_graph_edit_distance(a, b) == exact_graph_edit_distance(b, a)

    def test_matches_brute_force_on_random_graphs(self):
        for seed in range(12):
            a = erdos_renyi_graph(2 + seed % 4, 0.5, seed=seed)
            b = erdos_renyi_graph(2 + (seed + 1) % 4, 0.5, seed=seed + 40)
            assert exact_graph_edit_distance(a, b) == brute_force_ged(a, b)

    def test_triangle_inequality_on_small_graphs(self):
        graphs = [erdos_renyi_graph(4, 0.5, seed=i) for i in range(5)]
        for x, y, z in itertools.permutations(graphs, 3):
            assert exact_graph_edit_distance(x, z) <= (
                exact_graph_edit_distance(x, y) + exact_graph_edit_distance(y, z)
            )


class TestGuards:
    def test_size_guard(self):
        big = erdos_renyi_graph(20, 0.2, seed=1)
        with pytest.raises(DistanceError):
            exact_graph_edit_distance(big, big)

    def test_size_guard_configurable(self):
        graph = erdos_renyi_graph(13, 0.2, seed=1)
        assert exact_graph_edit_distance(graph, graph, max_nodes=14) == 0
