"""Tests for the weighted TED* variants (Section 12)."""

import pytest

from repro.exceptions import DistanceError
from repro.ted.ted_star import ted_star, ted_star_detailed
from repro.ted.weighted import (
    level_weighted_ted_star,
    ted_star_upper_bound_weights,
    weighted_ted_star,
)
from repro.ted.exact_ted import exact_tree_edit_distance
from repro.trees.random_trees import random_tree
from repro.trees.tree import Tree


@pytest.fixture
def tree_pair():
    a = Tree.from_levels([[3], [2, 1, 0], [0, 1, 0]])
    b = Tree.from_levels([[2], [2, 2], [1, 0, 0, 0]])
    return a, b


class TestWeightedTedStar:
    def test_unit_weights_match_plain_ted_star(self, tree_pair):
        a, b = tree_pair
        assert weighted_ted_star(a, b) == pytest.approx(ted_star(a, b))

    def test_constant_weight_scales_distance(self, tree_pair):
        a, b = tree_pair
        assert weighted_ted_star(a, b, 2.0, 2.0) == pytest.approx(2.0 * ted_star(a, b))

    def test_callable_weights(self, tree_pair):
        a, b = tree_pair
        value = weighted_ted_star(a, b, insert_delete_weight=lambda i: 1.0,
                                  move_weight=lambda i: 4.0 * i)
        assert value >= ted_star(a, b)

    def test_sequence_weights(self, tree_pair):
        a, b = tree_pair
        k = max(a.height(), b.height()) + 1
        weights = [0.0] + [1.0] * k  # index 0 unused
        assert weighted_ted_star(a, b, weights, weights) == pytest.approx(ted_star(a, b))

    def test_sequence_too_short_rejected(self, tree_pair):
        a, b = tree_pair
        with pytest.raises(DistanceError):
            weighted_ted_star(a, b, [1.0], [1.0])

    def test_non_positive_weights_rejected(self, tree_pair):
        a, b = tree_pair
        with pytest.raises(DistanceError):
            weighted_ted_star(a, b, 0.0, 1.0)

    def test_invalid_weight_spec_rejected(self, tree_pair):
        a, b = tree_pair
        with pytest.raises(DistanceError):
            weighted_ted_star(a, b, insert_delete_weight={"level": 1}, move_weight=1.0)

    def test_identity_preserved_under_weights(self, tree_pair):
        a, _ = tree_pair
        assert weighted_ted_star(a, a, 3.0, 5.0) == 0.0

    def test_symmetry_preserved_under_weights(self, tree_pair):
        a, b = tree_pair
        forward = weighted_ted_star(a, b, 2.0, lambda i: i)
        backward = weighted_ted_star(b, a, 2.0, lambda i: i)
        assert forward == pytest.approx(backward)

    def test_level_weighted_from_detailed_result(self, tree_pair):
        a, b = tree_pair
        detailed = ted_star_detailed(a, b)
        assert level_weighted_ted_star(detailed, 1.0, 1.0) == pytest.approx(detailed.distance)


class TestUpperBoundVariant:
    def test_w_plus_dominates_plain_ted_star(self, tree_pair):
        a, b = tree_pair
        assert ted_star_upper_bound_weights(a, b) >= ted_star(a, b)

    def test_w_plus_upper_bounds_exact_ted_on_random_trees(self):
        for seed in range(25):
            a = random_tree(2 + seed % 7, seed=seed)
            b = random_tree(2 + (seed * 3) % 7, seed=seed + 100)
            w_plus = ted_star_upper_bound_weights(a, b)
            exact = exact_tree_edit_distance(a, b)
            assert w_plus + 1e-9 >= exact

    def test_w_plus_zero_iff_isomorphic(self, tree_pair):
        a, b = tree_pair
        assert ted_star_upper_bound_weights(a, a) == 0.0
        assert ted_star_upper_bound_weights(a, b) > 0.0
