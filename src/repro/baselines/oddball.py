"""OddBall ego-net features (Akoglu, McGlohon & Faloutsos, PAKDD 2010).

OddBall characterises a node by a handful of statistics of its *ego-net* (the
node, its direct neighbors and all edges among them).  The paper treats
OddBall — like NetSimile — as a simplified version of ReFeX limited to the
instant neighborhood (k = 1), which is why it misses structural differences
deeper in the neighborhood.
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from repro.graph.graph import Graph

Node = Hashable

FEATURE_NAMES = (
    "degree",
    "ego_edges",
    "ego_total_degree",
    "ego_out_edges",
)


def oddball_features(graph: Graph, node: Node) -> List[float]:
    """Return the OddBall feature vector of ``node``.

    Features: degree of the node, number of edges inside the ego-net, total
    degree of ego-net members, and number of edges leaving the ego-net.
    """
    neighbors = graph.neighbors(node)
    ego_nodes = set(neighbors) | {node}
    ego_edges = 0
    out_edges = 0
    total_degree = 0
    for member in ego_nodes:
        member_neighbors = graph.neighbors(member)
        total_degree += len(member_neighbors)
        for other in member_neighbors:
            if other in ego_nodes:
                ego_edges += 1
            else:
                out_edges += 1
    ego_edges //= 2  # each intra-ego edge counted from both endpoints
    return [
        float(len(neighbors)),
        float(ego_edges),
        float(total_degree),
        float(out_edges),
    ]


def oddball_feature_table(graph: Graph) -> Dict[Node, List[float]]:
    """Return OddBall features for every node of ``graph``."""
    return {node: oddball_features(graph, node) for node in graph.nodes()}
