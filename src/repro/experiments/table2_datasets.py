"""Table 2 — dataset summary (paper sizes vs generated stand-in sizes)."""

from __future__ import annotations

from repro.datasets.registry import dataset_summary_table
from repro.experiments.reporting import ExperimentTable
from repro.utils.rng import RngLike


def table2_dataset_summary(scale: float = 1.0, seed: RngLike = None) -> ExperimentTable:
    """Reproduce Table 2: one row per dataset with node and edge counts.

    The paper's counts are reported verbatim next to the sizes of the
    synthetic stand-ins generated at the requested ``scale``, making the
    substitution explicit in the output itself.
    """
    table = ExperimentTable(
        title="Table 2: datasets summary (paper originals vs synthetic stand-ins)",
        columns=[
            "dataset",
            "family",
            "paper_nodes",
            "paper_edges",
            "generated_nodes",
            "generated_edges",
        ],
        notes=[
            "Original SNAP/KONECT graphs are unavailable offline; stand-ins preserve the "
            "per-node neighborhood structure (degree profile / tree shape) at reduced scale.",
            f"scale factor = {scale}",
        ],
    )
    for row in dataset_summary_table(scale=scale, seed=seed):
        table.add_row(
            dataset=row["dataset"],
            family=row["family"],
            paper_nodes=row["paper_nodes"],
            paper_edges=row["paper_edges"],
            generated_nodes=row["generated_nodes"],
            generated_edges=row["generated_edges"],
        )
    return table
