"""Tiered TED* distance resolution: one cascade shared by every consumer.

Before this module existed, three places re-implemented "try cheap summaries
before paying for exact TED*": the search engine, the distance-matrix
builder, and (not at all) the metric indexes.  :class:`BoundedNedDistance`
consolidates that discipline — the same move data-skipping systems make when
they answer predicates from precomputed per-block summaries instead of
scanning the blocks.

The cascade runs the tiers of :data:`TIER_CASCADE` in order, each returning
a ``(lower, upper)`` interval on TED*:

1. ``"signature"`` — equal AHU canonical signatures ⇒ distance exactly 0.
2. ``"level-size"`` — O(k) bounds from per-level sizes.
3. ``"degree-multiset"`` — earth-mover-style per-level bounds from the child
   count multisets; the lower bound dominates the level-size one.
4. ``"cache"`` — an LRU memory of previously computed exact distances,
   keyed by the ordered pair of canonical signatures.  TED* is a pure
   function of the two isomorphism classes (the kernel canonicalizes its
   inputs), so a hit closes the interval *exactly* without paying for a
   computation.  Sized per resolver (``cache_size``; 0 disables).
5. ``"exact"`` — the O(k·n³) TED* computation, paid only when the interval
   left by the cheap tiers still straddles the caller's decision boundary
   and the cache has never seen the signature pair; the result is routed
   back into the cache for the next probe.

Inputs are summary records (duck-typed: ``.tree``, ``.signature``,
``.level_sizes``, ``.degree_profiles`` — e.g.
:class:`repro.engine.tree_store.StoredTree`), so resolution never touches a
graph.  Every tier evaluation and every outcome (hit / decided / pruned /
cached / exact) is recorded in per-tier counters, which is how the
benchmarks prove *where* exact evaluations were skipped.

In the engine, resolvers are owned by :class:`repro.engine.session.NedSession`
— one warm resolver behind every query surface; construct one directly only
when working below the session layer.  The exact-distance cache persists as
a versioned *sidecar* (:meth:`BoundedNedDistance.save_cache` /
:meth:`~BoundedNedDistance.load_cache` / :meth:`~BoundedNedDistance.warm_from`),
since format v2 with per-entry hit counts so overflowing loads keep the
hottest entries; :func:`merge_sidecars` compacts the sidecars of parallel
sweep workers into one warm file.
"""

from __future__ import annotations

import math
import warnings
from collections import OrderedDict
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import DeadlineError, DistanceError, OverloadError
from repro.ted.bounds import (
    ted_star_degree_multiset_bounds,
    ted_star_level_size_bounds,
)
from repro.ted.ted_star import ted_star
from repro.utils.io import atomic_pickle_dump, load_validated_payload
from repro.utils.timer import clock

SIGNATURE_TIER = "signature"
LEVEL_SIZE_TIER = "level-size"
DEGREE_TIER = "degree-multiset"
CACHE_TIER = "cache"
EXACT_TIER = "exact"
NO_TIER = "none"

#: Exact-tier backend that evaluates pair *blocks* through the array-native
#: kernel (:mod:`repro.ted.batch`); values are bit-identical to
#: ``backend="scipy"``, so it shares scipy's matching semantics everywhere a
#: backend string selects tie-break behaviour.
BATCH_BACKEND = "batch"

#: Cheap tiers, in cascade order (exact is always the implicit last resort).
BOUND_TIERS = (SIGNATURE_TIER, LEVEL_SIZE_TIER, DEGREE_TIER)
#: The full resolution cascade.  The cache tier sits between the bound tiers
#: and exact but is controlled by ``cache_size`` (not the ``tiers``
#: selection), so it is not part of this tuple.
TIER_CASCADE = BOUND_TIERS + (EXACT_TIER,)

#: Cache capacity the engine components use unless told otherwise.
DEFAULT_CACHE_SIZE = 32768

# On-disk format of the exact-distance cache sidecar (mirrors the TreeStore
# header discipline: a format marker plus an integer version, validated
# before any entry is decoded).  Version 2 added per-entry hit counts, so an
# overflowing load keeps the *hottest* entries instead of the newest;
# version-1 sidecars still load (their entries carry zero hits, which makes
# the hotness tie-break fall back to recency — the v1 behaviour).
_CACHE_FORMAT = "repro-ned-cache"
_CACHE_VERSION = 2
_CACHE_SUPPORTED_VERSIONS = (1, 2)

#: One sidecar entry: (signature_a, signature_b, distance, hit_count).
CacheEntry = Tuple[str, str, float, int]


@dataclass
class ResolutionCounters:
    """Per-tier telemetry of a :class:`BoundedNedDistance`.

    ``*_evaluations`` count how often a tier was computed; ``signature_hits``
    / ``decided_by_*`` count pairs a tier answered exactly; ``pruned_by_*``
    count pairs a tier excluded from a decision (threshold / kNN cut) without
    ever knowing their distance.  ``cache_hits`` / ``cache_misses`` count the
    lookups of the signature-keyed cache tier: every pair that reaches the
    exact path of a cache-enabled resolver performs exactly one lookup, so
    ``cache_hits + cache_misses`` equals the number of exact-path pairs and
    ``cache_misses`` bounds ``exact_evaluations`` from above.
    :class:`repro.engine.stats.EngineStats` extends this with engine-level
    counters and aggregate properties.
    """

    exact_evaluations: int = 0
    signature_hits: int = 0
    level_size_evaluations: int = 0
    degree_evaluations: int = 0
    decided_by_level_size: int = 0
    decided_by_degree: int = 0
    pruned_by_level_size: int = 0
    pruned_by_degree: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def merge(self, other: "ResolutionCounters") -> None:
        """Accumulate ``other`` into this instance (for running totals).

        Field-driven over ``dataclasses.fields(other)``: a future tier's
        counters (added as new dataclass fields, possibly on a subclass) are
        merged automatically.  Counters present on ``other`` but absent here
        raise instead of silently dropping from the totals.
        """
        mine = {spec.name for spec in fields(self)}
        theirs = [spec.name for spec in fields(other)]
        missing = [name for name in theirs if name not in mine]
        if missing:
            raise TypeError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}: "
                f"counters {missing} would be silently dropped"
            )
        for name in theirs:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def copy(self) -> "ResolutionCounters":
        """Return an independent snapshot of the current counts."""
        return type(self)(**{spec.name: getattr(self, spec.name) for spec in fields(self)})

    def since(self, snapshot: "ResolutionCounters") -> "ResolutionCounters":
        """Return the counter deltas accumulated after ``snapshot``.

        Field-driven like :meth:`merge`; the snapshot must cover exactly this
        instance's counter fields (a :meth:`copy` always does), otherwise a
        field would be silently dropped from — or missing in — the delta.
        """
        mine = [spec.name for spec in fields(self)]
        theirs = {spec.name for spec in fields(snapshot)}
        if theirs != set(mine):
            raise TypeError(
                f"cannot diff {type(self).__name__} against {type(snapshot).__name__}: "
                f"counter fields differ ({sorted(set(mine) ^ theirs)})"
            )
        return type(self)(
            **{name: getattr(self, name) - getattr(snapshot, name) for name in mine}
        )


@dataclass(frozen=True)
class ResolutionInterval:
    """A ``[lower, upper]`` interval on TED* produced by the bound tiers.

    ``tier`` names the tier that supplied the governing (largest) lower
    bound — the tier credited when the interval later prunes or decides the
    pair.  ``exact`` is true when the interval pins a single value, which the
    consumer may use without paying for a TED* computation.
    """

    lower: float
    upper: float
    tier: str

    @property
    def exact(self) -> bool:
        return self.lower == self.upper

    def excludes(self, threshold: float) -> bool:
        """True when the whole interval lies beyond ``threshold``."""
        return self.lower > threshold

    def straddles(self, threshold: float) -> bool:
        """True when only an exact evaluation can settle ``<= threshold``."""
        return self.lower <= threshold < self.upper


class BoundedNedDistance:
    """Staged TED* resolution with per-tier counters.

    Parameters
    ----------
    k:
        Number of tree levels compared (must match the summaries' ``k``).
    backend:
        Bipartite matching backend forwarded to exact TED* (``"auto"``
        picks SciPy when available).  ``"batch"`` selects the array-native
        block kernel (:mod:`repro.ted.batch`) for the exact tier — values
        stay bit-identical to scipy's (see :attr:`matching_backend`), and
        sessions attach the same kernel automatically under ``"auto"`` when
        the store side-channel and SciPy are available.
    tiers:
        Which cheap tiers to run, any subset of :data:`BOUND_TIERS`; order is
        normalised to cascade order.  ``None`` enables all of them.  The
        exact tier cannot be disabled — it is the cascade's last resort.
    counters:
        Optional externally owned :class:`ResolutionCounters` (the engine
        passes an :class:`repro.engine.stats.EngineStats`); a private one is
        created when omitted.
    cache_size:
        Capacity of the signature-keyed LRU distance cache that sits between
        the bound tiers and exact TED* (0, the default, disables it).  TED*
        is a pure function of the two isomorphism classes, so a hit returns
        the exact distance; repeated probes — kNN for every node,
        permutation sweeps — are answered from memory.
    metrics:
        Optional :class:`repro.obs.metrics.MetricsRegistry` (duck-typed —
        only ``observe`` is called).  When attached, every tier evaluation
        additionally records its latency into ``resolver.<tier>_seconds``
        histograms, turning the per-tier *counts* into per-tier *time*.
        ``None`` (the default) keeps resolution free of clock reads.

    Example
    -------
    >>> from repro.engine.tree_store import TreeStore
    >>> from repro.graph.generators import grid_road_graph
    >>> store = TreeStore.from_graph(grid_road_graph(4, 4, seed=1), k=2)
    >>> resolver = BoundedNedDistance(k=2)
    >>> resolver.distance(store.entry(0), store.entry(5)) >= 0
    True
    """

    def __init__(
        self,
        k: int,
        backend: str = "auto",
        tiers: Optional[Sequence[str]] = None,
        counters: Optional[ResolutionCounters] = None,
        cache_size: int = 0,
        metrics=None,
    ) -> None:
        requested = BOUND_TIERS if tiers is None else tuple(tiers)
        unknown = [tier for tier in requested if tier not in BOUND_TIERS]
        if unknown:
            raise DistanceError(
                f"unknown bound tiers {unknown}; expected a subset of {BOUND_TIERS}"
            )
        if cache_size < 0:
            raise DistanceError(f"cache_size must be >= 0, got {cache_size}")
        self.k = k
        self.backend = backend
        self.tiers: Tuple[str, ...] = tuple(t for t in BOUND_TIERS if t in requested)
        self.counters = counters if counters is not None else ResolutionCounters()
        self.cache_size = cache_size
        self.metrics = metrics
        self._cache: "OrderedDict[Tuple[str, str], float]" = OrderedDict()
        # Lifetime lookup hits per resident entry; persisted in the sidecar
        # (format v2) so a later overflowing load keeps the hottest entries.
        self._cache_uses: Dict[Tuple[str, str], int] = {}
        self._batch_kernel = None
        # Optional block dispatcher (attach_block_dispatcher): offered every
        # exact block before the local kernels; None means local-only.
        self._block_dispatcher = None
        # Resilience wiring (attach_resilience): a FaultPlan activates the
        # kernel/sidecar fault sites, the breakers guard the exact-tier
        # degradation ladder (batch -> per-pair scipy -> hungarian), and a
        # per-plan Deadline is pushed down by the session around execution.
        self.faults = None
        self._deadline = None
        self._batch_breaker = None
        self._pair_breaker = None
        self._warned_degrades: set = set()
        if backend == BATCH_BACKEND:
            from repro.ted.batch import BatchTedKernel, batch_available

            if not batch_available():
                raise DistanceError(
                    "backend='batch' needs numpy and SciPy for the array-native "
                    "TED* kernel; use backend='auto' to fall back gracefully"
                )
            self._batch_kernel = BatchTedKernel()

    # ----------------------------------------------------------- batch kernel
    @property
    def matching_backend(self) -> str:
        """The per-pair matching backend this resolver's values realise.

        ``"batch"`` is an exact-*tier* strategy, not a matching strategy: its
        values are bit-identical to scipy's, so consumers that forward a
        backend string to per-pair code (process-pool workers, sidecar
        warmup, the fallback path) must use this instead of ``backend``.
        """
        return "scipy" if self.backend == BATCH_BACKEND else self.backend

    @property
    def batch_active(self) -> bool:
        """True when blocks are evaluated by the array-native kernel."""
        return self._batch_kernel is not None

    @property
    def batch_kernel(self):
        """The attached :class:`repro.ted.batch.BatchTedKernel`, if any."""
        return self._batch_kernel

    def attach_batch_kernel(self, kernel) -> bool:
        """Adopt an array-native batch kernel for block evaluation.

        Returns True when the kernel was attached.  Attachment is refused
        (False) when it could change values: the kernel realises scipy's
        matching semantics, so only the scipy-compatible backends
        (``"auto"`` resolving to scipy, ``"scipy"``, ``"batch"``) may adopt
        it, and only when numpy/SciPy are importable.  Passing ``None``
        detaches — except under ``backend="batch"``, whose contract *is* the
        kernel.
        """
        if kernel is None:
            if self.backend == BATCH_BACKEND:
                raise DistanceError(
                    "backend='batch' requires its batch kernel; construct a "
                    "resolver with a per-pair backend instead of detaching"
                )
            self._batch_kernel = None
            return False
        if self.backend not in ("auto", "scipy", BATCH_BACKEND):
            return False
        from repro.ted.batch import batch_available

        if not batch_available():
            return False
        self._batch_kernel = kernel
        return True

    def attach_block_dispatcher(self, dispatcher) -> None:
        """Offer exact blocks to ``dispatcher`` before evaluating locally.

        ``dispatcher`` is any callable taking the :meth:`exact_many` pair
        block and returning the list of values — or ``None`` to decline, in
        which case the block runs on the local path unchanged.  This is the
        serving layer's offload seam: the service's worker pool evaluates
        declined-or-dispatched blocks against the shared-memory store, and
        because both sides realise the same matching backend the values are
        bit-identical either way.  The dispatcher owns its failure policy
        (fall back locally on pool trouble), but must let service-protection
        errors (``DeadlineError``/``OverloadError``) propagate.  Pass
        ``None`` to detach.
        """
        self._block_dispatcher = dispatcher

    # -------------------------------------------------------------- resilience
    def attach_resilience(
        self,
        faults=None,
        breaker_threshold: Optional[int] = 3,
        breaker_cooldown: float = 1.0,
    ) -> None:
        """Wire fault injection and the exact-tier circuit breakers.

        ``faults`` (a :class:`repro.resilience.FaultPlan`) activates the
        ``"kernel.batch"`` / ``"kernel.pair"`` / ``"sidecar.load"`` /
        ``"sidecar.save"`` sites.  ``breaker_threshold``/``breaker_cooldown``
        configure two :class:`~repro.resilience.CircuitBreaker` guards on
        the exact-tier degradation ladder:

        * ``exact-batch`` — repeated batch-kernel failures degrade blocks to
          the per-pair path.  Values are **bit-identical** (the kernel
          realises scipy matching), so this rung trades only speed.
        * ``exact-pair`` — repeated per-pair failures on a scipy-compatible
          backend degrade to the dependency-free hungarian backend.  This
          rung trades availability over strict reproducibility: rare tie
          pairs may realise a different (equally optimal) matching, which
          the degrade warning spells out.

        ``breaker_threshold=None`` removes the breakers.  Sessions call this
        when a policy is active; bare resolvers stay unguarded.
        """
        from repro.resilience.policies import CircuitBreaker

        self.faults = faults
        if breaker_threshold is None:
            self._batch_breaker = None
            self._pair_breaker = None
            return
        self._batch_breaker = CircuitBreaker(
            "exact-batch", threshold=breaker_threshold,
            cooldown=breaker_cooldown, metrics=self.metrics,
        )
        self._pair_breaker = CircuitBreaker(
            "exact-pair", threshold=breaker_threshold,
            cooldown=breaker_cooldown, metrics=self.metrics,
        )

    def set_deadline(self, deadline) -> None:
        """Install (or clear) the cooperative per-plan deadline.

        The session pushes a :class:`repro.resilience.Deadline` here around
        each plan execution; the exact tiers check it per evaluation/block,
        so a slow or delay-faulted plan raises a typed
        :class:`~repro.exceptions.DeadlineError` instead of running away.
        """
        self._deadline = deadline

    def check_deadline(self, site: str = "resolver.exact") -> None:
        """Raise when the installed deadline (if any) is spent."""
        if self._deadline is not None:
            self._deadline.check(site)

    def breaker_states(self) -> Optional[Dict[str, Dict[str, object]]]:
        """Breaker telemetry for ``metrics_snapshot()``; None when unguarded."""
        if self._batch_breaker is None:
            return None
        return {
            self._batch_breaker.name: self._batch_breaker.as_dict(),
            self._pair_breaker.name: self._pair_breaker.as_dict(),
        }

    def _record_degrade(self, rung: str, from_backend: str, to_backend: str, error) -> None:
        """Count + warn (once per transition) about a ladder degrade."""
        if self.metrics is not None:
            self.metrics.inc("resilience.degrades")
            self.metrics.inc(f"resilience.degrades.{rung}")
        transition = (rung, from_backend, to_backend)
        if transition in self._warned_degrades:
            return
        self._warned_degrades.add(transition)
        from repro.resilience.faults import ResilienceWarning

        identical = (
            "values are bit-identical"
            if rung == "exact-batch"
            else "rare tie pairs may realise a different optimal matching"
        )
        warnings.warn(
            f"exact tier degraded {from_backend!r} -> {to_backend!r} after "
            f"{type(error).__name__}: {error} ({identical})",
            ResilienceWarning,
            stacklevel=3,
        )

    def _pair_exact(self, tree_a, tree_b) -> float:
        """One exact TED* through the per-pair rung of the ladder.

        Unguarded resolvers call straight through.  Guarded ones try the
        scipy-compatible backend while its breaker allows, degrade the
        failing pair to hungarian (counting + warning), and skip straight
        to hungarian while the breaker is open; the half-open probe after
        the cool-down reopens the fast path.
        """
        breaker = self._pair_breaker
        backend = self.matching_backend
        if breaker is None:
            if self.faults is not None:
                self.faults.fire("kernel.pair")
            return ted_star(tree_a, tree_b, k=self.k, backend=backend)
        if backend != "hungarian" and breaker.allows():
            try:
                if self.faults is not None:
                    self.faults.fire("kernel.pair")
                value = ted_star(tree_a, tree_b, k=self.k, backend=backend)
            except (DeadlineError, OverloadError):
                raise  # service-protection errors are not backend failures
            except Exception as error:
                breaker.record_failure()
                self._record_degrade("exact-pair", backend, "hungarian", error)
            else:
                breaker.record_success()
                return value
        return ted_star(tree_a, tree_b, k=self.k, backend="hungarian")

    def exact_many(self, pairs: Sequence[Tuple[object, object]]) -> List[float]:
        """Evaluate a block of pairs on the raw exact tier.

        No cache lookups, no counters — this is the block-shaped equivalent
        of calling ``ted_star`` directly; callers own the bookkeeping (as
        the matrix builder does).  With a batch kernel attached the whole
        block goes through the array-native path (latency recorded in the
        ``resolver.exact_batch_seconds`` histogram); otherwise it degrades
        to a per-pair loop on :attr:`matching_backend`.  Under an attached
        breaker, batch-kernel failures degrade the block to the per-pair
        path (bit-identical values) instead of failing the build.
        """
        if not pairs:
            return []
        self.check_deadline("resolver.exact_many")
        dispatcher = self._block_dispatcher
        if dispatcher is not None:
            dispatched = dispatcher(pairs)
            if dispatched is not None:
                return dispatched
        kernel = self._batch_kernel
        if kernel is not None:
            breaker = self._batch_breaker
            if breaker is None:
                if self.faults is not None:
                    self.faults.fire("kernel.batch")
                return self._kernel_block(kernel, pairs)
            if breaker.allows():
                try:
                    if self.faults is not None:
                        self.faults.fire("kernel.batch")
                    values = self._kernel_block(kernel, pairs)
                except (DeadlineError, OverloadError):
                    raise
                except Exception as error:
                    breaker.record_failure()
                    self._record_degrade(
                        "exact-batch", BATCH_BACKEND, self.matching_backend, error
                    )
                else:
                    breaker.record_success()
                    return values
        return [self._pair_exact(first.tree, second.tree) for first, second in pairs]

    def _kernel_block(self, kernel, pairs: Sequence[Tuple[object, object]]) -> List[float]:
        """Run one block through the batch kernel, timing it when measured."""
        if self.metrics is None:
            return kernel.ted_star_block(pairs, k=self.k)
        started = clock()
        values = kernel.ted_star_block(pairs, k=self.k)
        self.metrics.observe("resolver.exact_batch_seconds", clock() - started)
        return values

    def resolve_many(
        self,
        pairs: Sequence[Tuple[object, object]],
        threshold: Optional[float] = None,
        bounds: bool = True,
    ) -> List[Tuple[Optional[float], ResolutionInterval]]:
        """Run the cascade over a block of pairs, batching the exact tier.

        Counter-for-counter equivalent to calling :meth:`resolve` (or, with
        ``bounds=False``, :meth:`exact`) per pair in order, with one
        deliberate refinement shared with the matrix builder: pairs whose
        cache key repeats *within the block* are deduplicated — the first
        occurrence pays the exact evaluation and followers are counted as
        cache hits, exactly as they would be had the pairs been resolved
        sequentially.  The surviving distinct pairs are evaluated as one
        block via :meth:`exact_many`, which is where an attached batch
        kernel pays off.
        """
        results: List[Optional[float]] = [None] * len(pairs)
        intervals: List[Optional[ResolutionInterval]] = [None] * len(pairs)
        pending: List[int] = []
        pending_keys: List[Optional[Tuple[str, str]]] = []
        owners: Dict[Tuple[str, str], int] = {}
        followers: Dict[int, List[int]] = {}
        for index, (first, second) in enumerate(pairs):
            if bounds:
                interval = self.bounds(first, second)
                if threshold is not None and interval.excludes(threshold):
                    self.record_pruned(interval)
                    intervals[index] = interval
                    continue
                if interval.exact:
                    self.record_decided(interval)
                    results[index] = interval.lower
                    intervals[index] = interval
                    continue
            key = self.cache_key(first, second)
            if key is not None:
                owner = owners.get(key)
                if owner is not None:
                    # Deferred hit: sequential resolution would find the
                    # owner's freshly cached value here.
                    self.counters.cache_hits += 1
                    followers.setdefault(owner, []).append(index)
                    continue
                cached = self._timed(
                    "resolver.cache_lookup_seconds", self.cache_get, key
                )
                if cached is not None:
                    results[index] = cached
                    intervals[index] = ResolutionInterval(cached, cached, CACHE_TIER)
                    continue
                owners[key] = len(pending)
            pending.append(index)
            pending_keys.append(key)
        if pending:
            values = self.exact_many([pairs[index] for index in pending])
            self.counters.exact_evaluations += len(pending)
            for slot, index in enumerate(pending):
                value = values[slot]
                key = pending_keys[slot]
                if key is not None:
                    self.cache_put(key, value)
                results[index] = value
                intervals[index] = ResolutionInterval(value, value, EXACT_TIER)
                for follower in followers.get(slot, ()):
                    results[follower] = value
                    intervals[follower] = ResolutionInterval(value, value, CACHE_TIER)
        return list(zip(results, intervals))

    # ------------------------------------------------------------ bound tiers
    def _timed(self, name: str, func, *args, **kwargs):
        """Call ``func`` and, when a registry is attached, record its latency."""
        if self.metrics is None:
            return func(*args, **kwargs)
        started = clock()
        result = func(*args, **kwargs)
        self.metrics.observe(name, clock() - started)
        return result

    def bounds(self, first, second) -> ResolutionInterval:
        """Run the cheap tiers only; never computes an exact TED*.

        Stops at the first tier that pins the distance (``lower == upper``);
        later tiers cannot improve a closed interval.
        """
        counters = self.counters
        if SIGNATURE_TIER in self.tiers and first.signature == second.signature:
            counters.signature_hits += 1
            return ResolutionInterval(0.0, 0.0, SIGNATURE_TIER)
        lower, upper = 0.0, math.inf
        tier = NO_TIER
        if LEVEL_SIZE_TIER in self.tiers:
            counters.level_size_evaluations += 1
            size_lower, size_upper = self._timed(
                "resolver.level_size_seconds",
                ted_star_level_size_bounds,
                first.level_sizes,
                second.level_sizes,
            )
            lower, upper, tier = float(size_lower), float(size_upper), LEVEL_SIZE_TIER
            if lower == upper:
                return ResolutionInterval(lower, upper, tier)
        if DEGREE_TIER in self.tiers:
            counters.degree_evaluations += 1
            degree_lower, degree_upper = self._timed(
                "resolver.degree_seconds",
                ted_star_degree_multiset_bounds,
                first.degree_profiles,
                second.degree_profiles,
            )
            if float(degree_lower) > lower:
                lower, tier = float(degree_lower), DEGREE_TIER
            upper = min(upper, float(degree_upper))
        return ResolutionInterval(lower, upper, tier)

    # ------------------------------------------------------------- cache tier
    def cache_key(self, first, second) -> Optional[Tuple[str, str]]:
        """Return the cache key for a pair, or ``None`` when caching is off.

        The key is the *ordered* pair of canonical signatures (TED* is
        symmetric), so (a, b) and (b, a) share one entry.  Keying by
        signature is sound because the kernel canonicalizes its inputs: the
        distance is a pure function of the two isomorphism classes.
        """
        if not self.cache_size:
            return None
        a, b = first.signature, second.signature
        return (a, b) if a <= b else (b, a)

    def cache_get(self, key: Tuple[str, str]) -> Optional[float]:
        """Look up one exact-path pair in the cache (always counted).

        Every exact-path pair of a cache-enabled resolver performs exactly
        one lookup, so ``cache_hits + cache_misses`` counts those pairs.
        """
        value = self._cache.get(key)
        if value is None:
            self.counters.cache_misses += 1
            return None
        self._cache.move_to_end(key)
        self.counters.cache_hits += 1
        self._cache_uses[key] = self._cache_uses.get(key, 0) + 1
        return value

    def cache_put(self, key: Tuple[str, str], value: float) -> None:
        """Store an exact distance, evicting least-recently-used entries."""
        self._cache[key] = value
        self._cache.move_to_end(key)
        self._cache_uses.setdefault(key, 0)
        while len(self._cache) > self.cache_size:
            evicted, _ = self._cache.popitem(last=False)
            self._cache_uses.pop(evicted, None)

    def cache_len(self) -> int:
        """Return the number of cached distances."""
        return len(self._cache)

    def cache_clear(self) -> None:
        """Drop every cached distance (counters are left untouched)."""
        self._cache.clear()
        self._cache_uses.clear()

    # ------------------------------------------------------ cache persistence
    def save_cache(self, path: Union[str, Path]) -> int:
        """Persist the exact-distance cache as a sidecar file at ``path``.

        The sidecar records the resolver's ``k`` (distances are only
        comparable at equal ``k``) and :attr:`matching_backend` (tie pairs
        may admit several optimal matchings, so values are only guaranteed
        reproducible under the matching semantics that produced them —
        ``backend="batch"`` realises scipy's, so its sidecars interoperate
        with ``backend="scipy"`` resolvers) next to the signature-keyed
        entries, in LRU order (oldest first), each with its lifetime hit
        count (format v2).  Returns the number of entries written.  A sweep
        writes the sidecar once at the end of a run; the next process
        attaches it with :meth:`load_cache` or :meth:`warm_from` and answers
        the repeated pairs from memory.
        """
        if self.faults is not None and self.faults.fire("sidecar.save"):
            # Corruption at the save site means the *new* bytes are bad, but
            # atomic_pickle_dump's temp-write + rename discipline still
            # applies — so we simulate the nearest reachable failure, a torn
            # write detected before the rename, as a typed error.  The
            # previous sidecar on disk stays intact either way.
            raise DistanceError(
                f"injected corruption while writing distance-cache sidecar {path}"
            )
        entries = [
            (a, b, value, self._cache_uses.get((a, b), 0))
            for (a, b), value in self._cache.items()
        ]
        payload = {
            "format": _CACHE_FORMAT,
            "version": _CACHE_VERSION,
            "k": self.k,
            "backend": self.matching_backend,
            "entries": entries,
        }
        atomic_pickle_dump(payload, Path(path))
        return len(entries)

    def _read_sidecar(self, path: Union[str, Path]) -> List[CacheEntry]:
        """Read, validate and return the entries of a cache sidecar."""
        if self.faults is not None and self.faults.fire("sidecar.load"):
            # One-shot corruption: truncate the sidecar on disk and fall
            # through to the real validation path, which raises the same
            # typed DistanceError a genuinely torn file would.
            data = Path(path).read_bytes()
            Path(path).write_bytes(data[: max(1, len(data) // 2)])
        k, backend, entries = _read_sidecar_payload(path)
        if k != self.k:
            raise DistanceError(
                f"distance-cache sidecar {path} was written with k={k!r}, "
                f"but this resolver compares k={self.k} levels; the cached distances "
                f"are not comparable"
            )
        if backend != self.matching_backend:
            raise DistanceError(
                f"distance-cache sidecar {path} was written with backend="
                f"{backend!r}, but this resolver's values realise backend="
                f"{self.matching_backend!r}; tie pairs may admit several optimal "
                f"matchings, so cached values are only reproducible under the "
                f"matching semantics that produced them"
            )
        return entries

    def _require_cache_enabled(self, action: str) -> None:
        if not self.cache_size:
            raise DistanceError(
                f"cannot {action}: this resolver's distance cache is disabled "
                f"(cache_size=0)"
            )

    def load_cache(self, path: Union[str, Path]) -> int:
        """Replace the cache with a sidecar's entries; returns how many stay.

        When the sidecar holds more entries than ``cache_size``, the
        *hottest* entries (largest persisted hit counts, recency breaking
        ties) are kept — a sweep's most-requeried pairs survive the trim.
        Version-1 sidecars carry no hit counts, so the tie-break keeps the
        newest, the pre-v2 behaviour.  Counters are untouched: loading is
        not a lookup.
        """
        self._require_cache_enabled(f"load a distance-cache sidecar from {path}")
        entries = self._read_sidecar(path)
        if len(entries) > self.cache_size:
            ranked = sorted(
                enumerate(entries), key=lambda pair: (pair[1][3], pair[0])
            )[-self.cache_size:]
            # Preserve the sidecar's LRU order among the survivors.
            entries = [entry for _, entry in sorted(ranked, key=lambda pair: pair[0])]
        self._cache = OrderedDict(((a, b), value) for a, b, value, _ in entries)
        self._cache_uses = {(a, b): hits for a, b, _, hits in entries}
        return len(self._cache)

    def warm_from(self, source: "Union[str, Path, BoundedNedDistance]") -> int:
        """Merge another cache into this one; returns the entries added.

        ``source`` is a sidecar path (written by :meth:`save_cache`, e.g. by
        a previous process of a sweep) or a live resolver.  Entries already
        present keep their value, their recency and their hit counts; merged
        entries are inserted as the coldest *and with zero hits* — every
        lookup is counted exactly once, by the resolver that serves it, so
        N workers warming from one shared base sidecar do not each re-export
        the base's hit counts (which :func:`merge_sidecars` would then sum N
        times, letting a stale base entry outrank a genuinely hotter one).
        Use :meth:`load_cache` to *adopt* a sidecar, hit counts included.
        """
        self._require_cache_enabled("warm its distance cache")
        if isinstance(source, BoundedNedDistance):
            if source.k != self.k:
                raise DistanceError(
                    f"cannot warm from a resolver with k={source.k}; this resolver "
                    f"compares k={self.k} levels"
                )
            if source.matching_backend != self.matching_backend:
                raise DistanceError(
                    f"cannot warm from a resolver whose values realise backend="
                    f"{source.matching_backend!r}; this resolver's realise "
                    f"backend={self.matching_backend!r}"
                )
            incoming = [
                (a, b, value, source._cache_uses.get((a, b), 0))
                for (a, b), value in source._cache.items()
            ]
        else:
            incoming = self._read_sidecar(source)
        merged: "OrderedDict[Tuple[str, str], float]" = OrderedDict()
        added = 0
        for a, b, value, _hits in incoming:
            key = (a, b)
            if key not in self._cache and key not in merged:
                merged[key] = value
                added += 1
                self._cache_uses.setdefault(key, 0)
        for key, value in self._cache.items():
            merged[key] = value
        while len(merged) > self.cache_size:
            evicted, _ = merged.popitem(last=False)
            self._cache_uses.pop(evicted, None)
        self._cache = merged
        return added

    # ------------------------------------------------------------- exact tier
    def exact(self, first, second) -> float:
        """Resolve a pair on the exact path (cache first, then TED*)."""
        value, _ = self._exact_resolution(first, second)
        return value

    def _exact_resolution(self, first, second) -> Tuple[float, str]:
        """Return ``(distance, tier)`` where tier is cache or exact."""
        key = self.cache_key(first, second)
        if key is not None:
            cached = self._timed("resolver.cache_lookup_seconds", self.cache_get, key)
            if cached is not None:
                return cached, CACHE_TIER
        self.check_deadline("resolver.exact")
        self.counters.exact_evaluations += 1
        value = self._timed(
            "resolver.exact_seconds",
            self._pair_exact,
            first.tree,
            second.tree,
        )
        if key is not None:
            self.cache_put(key, value)
        return value, EXACT_TIER

    # -------------------------------------------------------------- outcomes
    def record_pruned(self, interval: ResolutionInterval) -> None:
        """Credit ``interval``'s tier with excluding a pair from a decision."""
        if interval.tier == LEVEL_SIZE_TIER:
            self.counters.pruned_by_level_size += 1
        elif interval.tier == DEGREE_TIER:
            self.counters.pruned_by_degree += 1

    def record_decided(self, interval: ResolutionInterval) -> None:
        """Credit ``interval``'s tier with pinning a pair's distance.

        Signature hits are already counted when :meth:`bounds` detects them,
        so they are not double-counted here.
        """
        if interval.tier == LEVEL_SIZE_TIER:
            self.counters.decided_by_level_size += 1
        elif interval.tier == DEGREE_TIER:
            self.counters.decided_by_degree += 1

    # -------------------------------------------------------- full resolution
    def resolve(
        self, first, second, threshold: Optional[float] = None
    ) -> Tuple[Optional[float], ResolutionInterval]:
        """Run the full cascade for one pair.

        Returns ``(value, interval)``.  With a ``threshold``, a pair whose
        interval already lies beyond it is excluded without an exact
        evaluation — ``value`` is ``None`` and the pruning is credited to the
        responsible tier.  Otherwise ``value`` is the exact distance, paid
        for only when the cheap tiers left the interval open.
        """
        interval = self.bounds(first, second)
        if threshold is not None and interval.excludes(threshold):
            self.record_pruned(interval)
            return None, interval
        if interval.exact:
            self.record_decided(interval)
            return interval.lower, interval
        value, tier = self._exact_resolution(first, second)
        return value, ResolutionInterval(value, value, tier)

    def distance(self, first, second) -> float:
        """Return the exact distance through the cascade (never prunes)."""
        value, _ = self.resolve(first, second)
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BoundedNedDistance(k={self.k}, tiers={self.tiers})"


def _read_sidecar_payload(path: Union[str, Path]) -> Tuple[int, str, List[CacheEntry]]:
    """Read one sidecar and return ``(k, backend, entries)`` after validation.

    Entries are normalised to the v2 shape ``(sig_a, sig_b, value, hits)``;
    version-1 records carry no hit counts and load with ``hits=0``.
    """
    payload = load_validated_payload(
        path, _CACHE_FORMAT, _CACHE_SUPPORTED_VERSIONS, "NED distance-cache",
        DistanceError,
    )
    try:
        if payload["version"] >= 2:
            entries = [
                (str(a), str(b), float(value), int(hits))
                for a, b, value, hits in payload.get("entries")
            ]
        else:
            entries = [
                (str(a), str(b), float(value), 0)
                for a, b, value in payload.get("entries")
            ]
    except (TypeError, ValueError) as error:
        raise DistanceError(
            f"{path} is not a valid NED distance-cache file "
            f"({type(error).__name__}: {error})"
        ) from error
    return payload.get("k"), payload.get("backend"), entries


def merge_sidecars(
    paths: Sequence[Union[str, Path]], output: Union[str, Path]
) -> int:
    """Compact many cache sidecars into one; returns the merged entry count.

    This is the reduce step of a parallel sweep: each worker writes its own
    sidecar (:meth:`BoundedNedDistance.save_cache`), and the merge produces
    one warm file for the next run.  Every input is header-validated and
    must agree on ``k`` and ``backend`` (distances are not comparable
    otherwise).  The first occurrence of a signature pair keeps its value
    (TED* is pure, so duplicates agree up to backend tie-breaks) and the
    hit counts of all occurrences are *summed*, preserving hotness across
    workers for eviction-aware loading.  The output is written atomically
    and keeps first-seen order (so earlier inputs are the coldest on load).

    Hit counts are eviction *hints*, not a correctness surface — any trim
    outcome only changes what is recomputed, never a value.  When every
    worker starts cold (or warms via :meth:`~BoundedNedDistance.warm_from`,
    which imports entries with zero hits), the sum counts each lookup
    exactly once.  Workers that *adopt* one shared base sidecar (a session's
    ``cache_file=``, which loads hit counts) each re-export the base's
    counts, so the merged base entries carry roughly worker-count times
    their true hotness — include such a base once and treat its entries as
    deliberately favoured, or give sweep workers per-worker cache files.
    """
    if not paths:
        raise DistanceError("merge_sidecars needs at least one sidecar path")
    reference: Optional[Tuple[int, str]] = None
    merged: "OrderedDict[Tuple[str, str], List[float]]" = OrderedDict()
    for path in paths:
        k, backend, entries = _read_sidecar_payload(path)
        if reference is None:
            reference = (k, backend)
        elif reference != (k, backend):
            raise DistanceError(
                f"cannot merge distance-cache sidecar {path}: it was written "
                f"with k={k!r}/backend={backend!r}, but the first sidecar uses "
                f"k={reference[0]!r}/backend={reference[1]!r}"
            )
        for a, b, value, hits in entries:
            record = merged.get((a, b))
            if record is None:
                merged[(a, b)] = [value, hits]
            else:
                record[1] += hits
    payload = {
        "format": _CACHE_FORMAT,
        "version": _CACHE_VERSION,
        "k": reference[0],
        "backend": reference[1],
        "entries": [
            (a, b, value, int(hits)) for (a, b), (value, hits) in merged.items()
        ],
    }
    atomic_pickle_dump(payload, Path(output))
    return len(merged)
