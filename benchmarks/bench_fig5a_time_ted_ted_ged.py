"""Figure 5a — computation time of TED* vs exact TED vs exact GED."""

from _bench_utils import emit_table

from repro.experiments.fig5_ted_ted_ged import figure5_ted_ted_ged


def test_figure5a_computation_time(benchmark):
    """TED* should be produced for every k; exact solvers stay restricted to small trees."""
    results = {}

    def run():
        results.update(figure5_ted_ted_ged(ks=(2, 3), pairs_per_k=10, scale=0.4))
        return results["figure5a_time"]

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(table)
    for row in table.rows:
        if row["pairs"]:
            assert row["ted_star_time"] > 0.0
